"""Command-line interface: ``python -m repro <command>``.

A small front end over the library, in the spirit of the "complete
programming environment" of Section 5:

* ``run FILE``    — evaluate a LOGRES source unit and print the computed
  instance (and goal answers if the unit has a goal);
* ``check FILE``  — parse, analyze and consistency-check without
  printing the instance (a linter for schemas and programs);
* ``fmt FILE``    — reprint the unit in canonical form;
* ``explain FILE FACT`` — evaluate with tracing and print the
  derivation tree of one association fact, given as
  ``pred(label=value, ...)``.

Source units may carry facts as rules (``p(x 1).``); a persisted state
can be supplied with ``--state state.json`` (see ``Database.save``).
"""

from __future__ import annotations

import argparse
import sys

from repro.constraints.checker import ConsistencyChecker
from repro.engine import Engine, EvalConfig, Semantics
from repro.engine.goals import answer_goal
from repro.engine.trace import Tracer
from repro.errors import LogresError
from repro.language.parser import parse_source
from repro.language.pretty import render_source
from repro.storage.factset import Fact, FactSet
from repro.storage.persist import loads_state
from repro.values.complex import TupleValue


def _load_unit(path: str, state_path: str | None):
    with open(path, encoding="utf-8") as f:
        unit = parse_source(f.read())
    if state_path:
        with open(state_path, encoding="utf-8") as f:
            schema, edb, program = loads_state(f.read())
        schema = unit.schema(schema)
        rules = program.rules + tuple(unit.rules)
    else:
        schema = unit.schema()
        edb = FactSet()
        rules = tuple(unit.rules)
    from repro.language.ast import Program

    return schema, Program(rules, unit.goal), edb


def _print_instance(instance: FactSet) -> None:
    for pred in instance.predicates():
        if pred.startswith("__"):
            continue
        print(f"{pred} ({instance.count(pred)}):")
        for fact in sorted(instance.facts_of(pred), key=repr):
            print(f"  {fact!r}")


def cmd_run(args) -> int:
    schema, program, edb = _load_unit(args.file, args.state)
    engine = Engine(schema, program,
                    EvalConfig(max_iterations=args.max_iterations,
                               incremental=not args.reference))
    instance = engine.run(edb, Semantics(args.semantics))
    if program.goal is not None:
        answers = answer_goal(program.goal, instance, schema)
        print(f"{len(answers)} answer(s):")
        for answer in answers:
            rendered = ", ".join(
                f"{k} = {v!r}" for k, v in sorted(answer.items())
            )
            print(f"  {rendered}")
    else:
        _print_instance(instance)
    stats = engine.stats
    slowest = max(stats.time_per_iteration, default=0.0)
    print(
        f"-- {stats.iterations} iteration(s),"
        f" {instance.count()} fact(s),"
        f" {stats.inventions} invented oid(s),"
        f" {stats.time_total * 1000:.1f} ms total"
        f" ({slowest * 1000:.1f} ms slowest iteration,"
        f" {'incremental' if not args.reference else 'reference'} kernel)",
        file=sys.stderr,
    )
    return 0


def cmd_check(args) -> int:
    schema, program, edb = _load_unit(args.file, args.state)
    engine = Engine(schema, program)  # analysis runs in the constructor
    instance = engine.run(edb, Semantics(args.semantics))
    denials = tuple(r for r in program.rules if r.is_denial)
    violations = ConsistencyChecker(schema, denials).check(instance)
    if violations:
        print(f"{len(violations)} violation(s):")
        for v in violations:
            print(f"  {v!r}")
        return 1
    print("ok: schema valid, program safe, instance consistent")
    return 0


def cmd_fmt(args) -> int:
    with open(args.file, encoding="utf-8") as f:
        unit = parse_source(f.read())
    print(render_source(unit.schema(), unit.program()))
    return 0


def cmd_explain(args) -> int:
    schema, program, edb = _load_unit(args.file, args.state)
    tracer = Tracer()
    engine = Engine(schema, program)
    instance = engine.run(edb, Semantics(args.semantics), tracer=tracer)
    fact = _parse_fact(args.fact)
    if fact not in instance:
        print(f"{fact!r} does not hold in the instance")
        return 1
    print(tracer.explain(fact, instance, engine.schema).render())
    return 0


def _parse_fact(text: str) -> Fact:
    """``pred(label=value, ...)`` with int / quoted-string values."""
    text = text.strip()
    if "(" not in text or not text.endswith(")"):
        raise LogresError(
            f"cannot parse fact {text!r}: expected pred(label=value, ...)"
        )
    pred, _, inner = text.partition("(")
    fields = {}
    body = inner[:-1].strip()
    if body:
        for part in body.split(","):
            label, _, raw = part.partition("=")
            raw = raw.strip()
            if raw.startswith(('"', "'")):
                value: object = raw.strip("\"'")
            else:
                try:
                    value = int(raw)
                except ValueError:
                    value = raw
            fields[label.strip().lower()] = value
    return Fact(pred.strip().lower(), TupleValue(fields))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LOGRES (SIGMOD 1990) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="LOGRES source file")
        p.add_argument("--state", help="persisted database state (JSON)")
        p.add_argument(
            "--semantics",
            choices=[s.value for s in Semantics],
            default=Semantics.INFLATIONARY.value,
        )

    p_run = sub.add_parser("run", help="evaluate and print the instance")
    common(p_run)
    p_run.add_argument("--max-iterations", type=int, default=10_000)
    p_run.add_argument(
        "--reference",
        action="store_true",
        help="use the copying reference kernel instead of the"
             " incremental one (for timing comparisons)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_check = sub.add_parser("check", help="analyze and verify consistency")
    common(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_fmt = sub.add_parser("fmt", help="print the canonical source form")
    p_fmt.add_argument("file")
    p_fmt.set_defaults(fn=cmd_fmt)

    p_explain = sub.add_parser(
        "explain", help="show the derivation tree of a fact"
    )
    common(p_explain)
    p_explain.add_argument(
        "fact", help='association fact, e.g. \'anc(a="x", d="y")\''
    )
    p_explain.set_defaults(fn=cmd_explain)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except LogresError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
