"""Active domains (Section 2.1).

Type equations dictate the *active domain* of each type: the set of values
of that type present in a given database state.  The active domain is the
range of the implicit quantifiers of a rule — in particular, variables
occurring only in negated literals range over the active domain of their
type.

:class:`ActiveDomains` scans a fact set once (lazily, per requested type)
and serves the value sets.  The incremental engine keeps one instance
alive across fixpoint rounds and calls :meth:`ActiveDomains.invalidate`
with the predicates whose extensions changed; only the cached domains
that can draw values from those predicates are dropped.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.storage.factset import FactSet
from repro.types.descriptors import (
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleType,
    TypeDescriptor,
)
from repro.types.refinement import types_compatible
from repro.types.schema import Schema
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid


class ActiveDomains:
    """Per-type active domains over one fact set."""

    def __init__(self, facts: FactSet, schema: Schema):
        self._facts = facts
        self._schema = schema
        self._cache: dict[TypeDescriptor, frozenset] = {}

    def domain(self, descriptor: TypeDescriptor) -> frozenset:
        """All values of ``descriptor``'s type present in the fact set."""
        cached = self._cache.get(descriptor)
        if cached is not None:
            return cached
        schema = self._schema
        if isinstance(descriptor, NamedType) and schema.is_class(
            descriptor.name
        ):
            result = frozenset(self._facts.oids_of(descriptor.name))
        else:
            collected: set[Value] = set()
            for pred in self._facts.predicates():
                if not schema.has(pred):
                    continue
                eff = schema.effective_type(pred)
                relevant = [
                    f.label
                    for f in eff.fields
                    if _positions_overlap(f.type, descriptor, schema)
                ]
                if not relevant:
                    continue
                for fact in self._facts.facts_of(pred):
                    for label in relevant:
                        if label in fact.value:
                            _collect(
                                fact.value[label],
                                eff.field(label).type,
                                descriptor,
                                schema,
                                collected,
                            )
            result = frozenset(collected)
        self._cache[descriptor] = result
        return result

    def enumerate(self, descriptor: TypeDescriptor) -> Iterator[Value]:
        # deterministic order for reproducible evaluation
        yield from sorted(self.domain(descriptor), key=_sort_key)

    def invalidate(self, predicates: Iterable[str]) -> None:
        """Drop cached domains that may draw values from ``predicates``.

        Called by the incremental engine after applying a delta, with the
        predicates whose extensions changed; domains fed only by other
        predicates survive, so a round touching one relation does not
        re-scan the whole fact set for every negated literal.
        """
        changed = {p.lower() for p in predicates}
        if not changed:
            return
        for descriptor in list(self._cache):
            if any(self._feeds(pred, descriptor) for pred in changed):
                del self._cache[descriptor]

    def _feeds(self, pred: str, descriptor: TypeDescriptor) -> bool:
        """Could facts of ``pred`` contribute to ``descriptor``'s domain?"""
        schema = self._schema
        if isinstance(descriptor, NamedType) and schema.is_class(
            descriptor.name
        ):
            return pred == descriptor.name.lower()
        if not schema.has(pred):
            return True  # unknown predicate: be conservative
        eff = schema.effective_type(pred)
        return any(
            _positions_overlap(f.type, descriptor, schema)
            for f in eff.fields
        )


def _positions_overlap(
    field_type: TypeDescriptor, wanted: TypeDescriptor, schema: Schema
) -> bool:
    """Could a position declared ``field_type`` hold values of ``wanted``?"""
    if field_type == wanted:
        return True
    if types_compatible(field_type, wanted, schema):
        return True
    # nested collection elements
    element = getattr(field_type, "element", None)
    if element is not None:
        return _positions_overlap(element, wanted, schema)
    if isinstance(field_type, TupleType):
        return any(
            _positions_overlap(f.type, wanted, schema)
            for f in field_type.fields
        )
    if isinstance(field_type, NamedType) and schema.is_domain(
        field_type.name
    ):
        return _positions_overlap(
            schema.rhs_of(field_type.name), wanted, schema
        )
    return False


def _collect(
    value: Value,
    declared: TypeDescriptor,
    wanted: TypeDescriptor,
    schema: Schema,
    out: set,
) -> None:
    if types_compatible(declared, wanted, schema) and not isinstance(
        value, (SetValue, MultisetValue, SequenceValue, TupleValue)
    ):
        out.add(value)
        return
    if declared == wanted:
        out.add(value)
        return
    if isinstance(declared, NamedType) and schema.is_domain(declared.name):
        _collect(value, schema.rhs_of(declared.name), wanted, schema, out)
        return
    if isinstance(declared, (SetType, MultisetType, SequenceType)):
        assert isinstance(value, (SetValue, MultisetValue, SequenceValue))
        for v in value:
            _collect(v, declared.element, wanted, schema, out)
        return
    if isinstance(declared, TupleType) and isinstance(value, TupleValue):
        for f in declared.fields:
            if f.label in value:
                _collect(value[f.label], f.type, wanted, schema, out)


def _sort_key(value: Value):
    if isinstance(value, Oid):
        return (0, value.number, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (2, value, "")
    if isinstance(value, str):
        return (3, 0, value)
    return (4, 0, repr(value))
