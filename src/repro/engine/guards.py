"""Execution guards: bounded, cancellable fixpoint evaluation.

The paper flags non-terminating oid invention as the central hazard of
the semantics (Section 3.3), and :class:`~repro.engine.fixpoint.EvalConfig`
has always bounded iterations, facts and inventions.  A
:class:`ResourceGuard` extends those static budgets with the budgets a
long-running service needs:

* a **wall-clock timeout** (seconds, monotonic clock),
* a **max-derived-facts** budget on the live fact count,
* a **max-invented-oids** budget checked *at invention sites* (so a
  single runaway iteration cannot overshoot the budget arbitrarily),
* a **max-fact-size** budget on the scalar width of any derived fact
  (oid invention paired with collection constructors can grow values,
  not just fact counts), and
* **cooperative cancellation**: any thread may call :meth:`cancel`; the
  engine observes the flag at the next iteration boundary or invention.

Every breach raises the deterministic
:class:`~repro.errors.EvalBudgetExceeded` naming the budget that
tripped; the engine kernels attach the partial
:class:`~repro.engine.fixpoint.EvalStats` and a consistent
partial-state snapshot before propagating, and the CLI renders the
breach as a structured diagnostic with exit status 3
(``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import EvalBudgetExceeded
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
)

#: budget name → stable diagnostic code (``docs/DIAGNOSTICS.md``).
BUDGET_CODES: dict[str, str] = {
    "timeout": "LG801",
    "max_facts": "LG802",
    "max_inventions": "LG803",
    "max_fact_size": "LG804",
    "cancelled": "LG805",
    "max_iterations": "LG806",
}


def value_size(value) -> int:
    """The scalar width of a value: how many elementary leaves it holds."""
    if isinstance(value, TupleValue):
        return sum(value_size(v) for _, v in value.items)
    if isinstance(value, (SetValue, SequenceValue)):
        return sum(value_size(v) for v in value) or 1
    if isinstance(value, MultisetValue):
        return sum(value_size(v) * n for v, n in value.counts) or 1
    return 1


@dataclass
class ResourceGuard:
    """Runtime budgets carried by :class:`~repro.engine.fixpoint.EvalConfig`.

    A guard is *armed* by :meth:`arm` at the start of every engine run
    (that is when the timeout deadline is fixed); cancellation is sticky
    across runs until :meth:`reset`, so a guard shared with a
    controlling thread keeps refusing work after a cancel.
    """

    timeout: float | None = None        # wall-clock seconds per run
    max_facts: int | None = None        # live facts, checked per iteration
    max_inventions: int | None = None   # invented oids, checked on invent
    max_fact_size: int | None = None    # scalar leaves per derived fact
    _deadline: float | None = field(default=None, repr=False, compare=False)
    _cancelled: bool = field(default=False, repr=False, compare=False)
    _on_breach: object = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def arm(self, on_breach=None) -> "ResourceGuard":
        """Fix the timeout deadline for one run.

        ``on_breach`` is a zero-argument callable invoked (best-effort)
        right before the breach exception is raised — the engine passes
        the instrumentation's ``flush``, so an aborted run's trace file
        still ends on a complete JSON line."""
        if self.timeout is not None:
            self._deadline = time.monotonic() + self.timeout
        self._on_breach = on_breach
        return self

    def cancel(self) -> None:
        """Cooperative cancellation: observed at the next check point."""
        self._cancelled = True

    def reset(self) -> None:
        self._cancelled = False
        self._deadline = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # ------------------------------------------------------------------
    # check points
    # ------------------------------------------------------------------
    def check_iteration(
        self, facts: int | None = None, inventions: int | None = None
    ) -> None:
        """Iteration-boundary check: all four kernels call this before
        starting an iteration (`docs/ROBUSTNESS.md`)."""
        self._check_interrupt()
        if (
            self.max_facts is not None
            and facts is not None
            and facts > self.max_facts
        ):
            self._trip("max_facts", self.max_facts, facts,
                       f"fact budget exceeded ({facts} live facts,"
                       f" limit {self.max_facts})")
        if (
            self.max_inventions is not None
            and inventions is not None
            and inventions > self.max_inventions
        ):
            self._trip("max_inventions", self.max_inventions, inventions,
                       f"oid invention budget exceeded ({inventions} oids,"
                       f" limit {self.max_inventions})")

    def on_invention(self, inventions: int) -> None:
        """Invention-site check (:mod:`repro.engine.step`): a runaway
        inventing rule is stopped mid-iteration, not one iteration
        late."""
        self._check_interrupt()
        if (
            self.max_inventions is not None
            and inventions > self.max_inventions
        ):
            self._trip("max_inventions", self.max_inventions, inventions,
                       f"oid invention budget exceeded ({inventions} oids,"
                       f" limit {self.max_inventions})")

    def check_fact_size(self, pred: str, value) -> None:
        if self.max_fact_size is None:
            return
        size = value_size(value)
        if size > self.max_fact_size:
            self._trip("max_fact_size", self.max_fact_size, size,
                       f"derived {pred!r} fact has {size} scalar"
                       f" component(s), limit {self.max_fact_size}")

    # ------------------------------------------------------------------
    def _check_interrupt(self) -> None:
        if self._cancelled:
            self._trip("cancelled", None, None,
                       "evaluation cancelled cooperatively")
        if self._deadline is not None:
            now = time.monotonic()
            if now > self._deadline:
                overrun = now - (self._deadline - (self.timeout or 0.0))
                self._trip("timeout", self.timeout, overrun,
                           f"wall-clock timeout exceeded"
                           f" ({overrun:.3f}s elapsed,"
                           f" limit {self.timeout:g}s)")

    def _trip(self, budget: str, limit, observed, message: str) -> None:
        if self._on_breach is not None:
            try:
                self._on_breach()
            except Exception:
                pass  # flushing telemetry must never mask the breach
        raise EvalBudgetExceeded(
            message, budget=budget, limit=limit, observed=observed
        )
