"""Valuations: term resolution and literal matching (Appendix B, Def. 5-6).

A *valuation* maps a rule's variables to values.  This module provides the
two directions the one-step operator needs:

* :func:`resolve_term` — evaluate a term to a concrete value under a
  (partial) valuation, including data-function reads (``desc(X)`` denotes
  the set of results currently recorded for ``X``), arithmetic, and
  collection construction;
* :func:`match_literal` — enumerate the extensions of a valuation that
  satisfy one ordinary literal against a fact set, handling labeled
  arguments, ``self`` oid variables, tuple variables, nested patterns and
  oid dereferencing.

**Tuple variables over classes** bind to the object's attribute tuple
extended with the reserved label ``self`` holding the oid — this is how
"tuple variables defined for a class include the oid" (Section 3.1) is
realized.  :func:`values_unify` lets such a binding unify with a plain oid
(the paper's Example 3.1, where a tuple variable and an oid variable
unify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import BuiltinError, EvaluationError
from repro.language.analysis import FUNCTION_VALUE_LABEL
from repro.language.ast import (
    Args,
    ArithExpr,
    CollectionTerm,
    Constant,
    FunctionApp,
    Literal,
    Pattern,
    Term,
    Var,
)
from repro.storage.factset import Fact, FactSet
from repro.types.descriptors import NamedType
from repro.types.schema import Schema
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid

SELF_LABEL = "self"

Bindings = dict[Var, Value]


class Unbound(Exception):
    """Raised when a term cannot be resolved under the current valuation."""

    def __init__(self, var: Var):
        self.var = var
        super().__init__(f"unbound variable {var!r}")


@dataclass
class MatchContext:
    """Shared state for matching: the current fact set and schema.

    ``use_indexes`` switches the per-literal hash-index lookups on or
    off (off = full predicate scans; exists for the indexing ablation
    benchmark).  ``metrics`` is an optional
    :class:`repro.observability.MetricsRegistry`; when set, candidate
    enumeration records per-predicate lookup counts and join fan-out.
    """

    facts: FactSet
    schema: Schema
    use_indexes: bool = True
    metrics: object | None = None


# ---------------------------------------------------------------------------
# value coercion and unification
# ---------------------------------------------------------------------------
def as_oid(value: Value) -> Oid | None:
    """The oid carried by ``value``: an oid itself, or a class tuple
    binding's ``self`` component."""
    if isinstance(value, Oid):
        return value
    if isinstance(value, TupleValue):
        inner = value.get(SELF_LABEL)
        if isinstance(inner, Oid):
            return inner
    return None


def values_unify(a: Value, b: Value) -> bool:
    """Equality modulo the oid/object-tuple coercion."""
    if a == b:
        return True
    oid_a, oid_b = as_oid(a), as_oid(b)
    if oid_a is not None and oid_b is not None:
        return oid_a == oid_b
    return False


def bind(bindings: Bindings, var: Var, value: Value) -> Bindings | None:
    """Extend ``bindings`` with ``var = value``; None on unification failure.

    When an oid meets an object-tuple binding, the *more informative*
    value (the tuple, which includes the oid) is kept.
    """
    existing = bindings.get(var)
    if existing is None:
        out = dict(bindings)
        out[var] = value
        return out
    if existing == value:
        return bindings
    if values_unify(existing, value):
        if isinstance(existing, Oid) and isinstance(value, TupleValue):
            out = dict(bindings)
            out[var] = value
            return out
        return bindings
    return None


# ---------------------------------------------------------------------------
# term resolution (construction direction)
# ---------------------------------------------------------------------------
def resolve_term(term: Term, bindings: Bindings, ctx: MatchContext) -> Value:
    """Evaluate ``term`` to a value; raises :class:`Unbound` if a variable
    is missing from the valuation."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Var):
        try:
            return bindings[term]
        except KeyError:
            raise Unbound(term) from None
    if isinstance(term, ArithExpr):
        left = resolve_term(term.left, bindings, ctx)
        right = resolve_term(term.right, bindings, ctx)
        return _arith(term.op, left, right)
    if isinstance(term, CollectionTerm):
        elements = [resolve_term(e, bindings, ctx) for e in term.elements]
        if term.kind == "set":
            return SetValue(elements)
        if term.kind == "multiset":
            return MultisetValue(elements)
        return SequenceValue(elements)
    if isinstance(term, FunctionApp):
        return read_function(term, bindings, ctx)
    if isinstance(term, Pattern):
        if term.args.self_term is not None or term.args.tuple_var is not None:
            raise EvaluationError(
                f"pattern {term!r} cannot be constructed as a value"
            )
        return TupleValue({
            label: resolve_term(sub, bindings, ctx)
            for label, sub in term.args.labeled
        })
    raise EvaluationError(f"cannot resolve term {term!r}")


def _arith(op: str, left: Value, right: Value) -> Value:
    for side in (left, right):
        if not isinstance(side, (int, float)) or isinstance(side, bool):
            raise BuiltinError(
                f"arithmetic on non-numeric value {side!r}"
            )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise BuiltinError("division by zero")
        result = left / right
        if isinstance(left, int) and isinstance(right, int) and \
                left % right == 0:
            return left // right
        return result
    raise BuiltinError(f"unknown arithmetic operator {op!r}")


def read_function(
    app: FunctionApp, bindings: Bindings, ctx: MatchContext
) -> SetValue:
    """The *set* denoted by a data-function application: all ``value``
    components of the backing association's facts whose arguments match."""
    decl = ctx.schema.functions.get(app.name)
    if decl is None:
        raise EvaluationError(f"unknown data function {app.name!r}")
    arg_values = [resolve_term(a, bindings, ctx) for a in app.args]
    pred = decl.backing_predicate()
    out = []
    for fact in ctx.facts.facts_of(pred):
        if all(
            values_unify(fact.value.get(label), v)
            for label, v in zip(decl.arg_labels, arg_values)
        ):
            out.append(fact.value[FUNCTION_VALUE_LABEL])
    return SetValue(out)


# ---------------------------------------------------------------------------
# lenient head-side unification (why-not analysis)
# ---------------------------------------------------------------------------
def seed_bindings(
    args: Args, fact: Fact, ctx: MatchContext
) -> tuple[Bindings, str | None]:
    """Bindings a *head* argument list would need to produce ``fact``.

    The forgiving counterpart of :func:`match_fact`, used by why-not
    provenance (:mod:`repro.observability.whynot`) to replay a rule
    against a hypothetical conclusion: variables bind to the fact's
    components, ground terms must unify (a mismatch is *reported*, not
    raised), and complex terms — arithmetic, function reads, nested
    constructors — are left unbound rather than rejected, so the body
    probe can still run with whatever the head does determine.

    Returns ``(bindings, mismatch)`` where ``mismatch`` is a human
    description of the first component that can never equal the fact's
    value (None when the head is compatible).
    """
    bindings: Bindings = {}
    if args.self_term is not None and fact.oid is not None:
        if isinstance(args.self_term, Var):
            bindings[args.self_term] = fact.oid
    for label, term in args.labeled:
        if label not in fact.value:
            continue  # the queried fact constrains fewer attributes
        value = fact.value[label]
        if isinstance(term, Var):
            existing = bindings.get(term)
            if existing is not None and not values_unify(existing, value):
                return bindings, (
                    f"variable {term!r} would need both"
                    f" {existing!r} and {value!r}"
                )
            bindings[term] = value
        elif isinstance(term, Constant):
            if not values_unify(term.value, value):
                return bindings, (
                    f"head requires {label} = {term!r},"
                    f" queried fact has {value!r}"
                )
        # complex terms (arithmetic, function reads, patterns) are not
        # invertible; leave their variables free for the body probe
    if args.tuple_var is not None:
        whole: Value = fact.value
        if fact.oid is not None:
            whole = fact.value.with_field(SELF_LABEL, fact.oid)
        bindings[args.tuple_var] = whole
    return bindings, None


# ---------------------------------------------------------------------------
# literal matching (enumeration direction)
# ---------------------------------------------------------------------------
def match_literal(
    literal: Literal, bindings: Bindings, ctx: MatchContext
) -> Iterator[Bindings]:
    """Extensions of ``bindings`` satisfying the *positive* ``literal``."""
    for fact in _candidate_facts(literal, bindings, ctx):
        extended = match_fact(literal.args, fact, bindings, ctx)
        if extended is not None:
            yield extended


def _candidate_facts(
    literal: Literal, bindings: Bindings, ctx: MatchContext
) -> Iterator[Fact]:
    """Facts that could match, using hash indexes where a bound simple
    value is available."""
    args = literal.args
    m = ctx.metrics
    if not ctx.use_indexes:
        if m is not None:
            _record_scan(m, ctx, literal.pred)
        yield from ctx.facts.facts_of(literal.pred)
        return
    # self lookup
    if args.self_term is not None:
        try:
            value = resolve_term(args.self_term, bindings, ctx)
        except Unbound:
            value = None
        oid = as_oid(value) if value is not None else None
        if oid is not None:
            stored = ctx.facts.value_of(literal.pred, oid)
            if m is not None:
                m.inc("match_oid_lookups", (("pred", literal.pred),))
                m.observe("join_fanout", (("pred", literal.pred),),
                          1 if stored is not None else 0)
            if stored is not None:
                yield Fact(literal.pred, stored, oid)
            return
    # indexed label lookup
    for label, term in args.labeled:
        if isinstance(term, (Constant, Var)):
            try:
                value = resolve_term(term, bindings, ctx)
            except Unbound:
                continue
            if isinstance(value, TupleValue) and SELF_LABEL in value:
                value = value[SELF_LABEL]  # object binding at oid position
            bucket = ctx.facts.lookup(literal.pred, label, value)
            if m is not None:
                m.inc("match_indexed_lookups", (("pred", literal.pred),))
                m.observe("join_fanout", (("pred", literal.pred),),
                          len(bucket))
            yield from bucket
            return
    if m is not None:
        _record_scan(m, ctx, literal.pred)
    yield from ctx.facts.facts_of(literal.pred)


def _record_scan(m, ctx: MatchContext, pred: str) -> None:
    """A full-predicate scan: the index found nothing to key on."""
    m.inc("match_scans", (("pred", pred),))
    m.observe("join_fanout", (("pred", pred),), ctx.facts.count(pred))


def match_fact(
    args: Args, fact: Fact, bindings: Bindings, ctx: MatchContext
) -> Bindings | None:
    """Match one fact against an argument list; extended bindings or None."""
    current: Bindings | None = bindings
    if args.self_term is not None:
        if fact.oid is None:
            return None
        current = _match_term_value(
            args.self_term, fact.oid, current, ctx
        )
        if current is None:
            return None
    for label, term in args.labeled:
        if label not in fact.value:
            return None
        current = _match_term_value(term, fact.value[label], current, ctx)
        if current is None:
            return None
    if args.tuple_var is not None:
        whole: Value = fact.value
        if fact.oid is not None:
            whole = fact.value.with_field(SELF_LABEL, fact.oid)
        current = bind(current, args.tuple_var, whole)
        if current is None:
            return None
    if args.positional:
        raise EvaluationError(
            "unresolved positional arguments reached the engine; run"
            " analysis first"
        )
    return current


def _match_term_value(
    term: Term, value: Value, bindings: Bindings, ctx: MatchContext
) -> Bindings | None:
    """Match a single argument term against a fact component value."""
    if isinstance(term, Var):
        return bind(bindings, term, value)
    if isinstance(term, Pattern):
        return _match_pattern(term, value, bindings, ctx)
    try:
        resolved = resolve_term(term, bindings, ctx)
    except Unbound as exc:
        # a complex term with exactly one unbound variable directly at a
        # component would need inverse evaluation; only '=' supports that.
        raise EvaluationError(
            f"argument term {term!r} has unbound variable {exc.var!r};"
            " bind it earlier in the body"
        ) from None
    return bindings if values_unify(resolved, value) else None


def _match_pattern(
    pattern: Pattern, value: Value, bindings: Bindings, ctx: MatchContext
) -> Bindings | None:
    """Match a nested pattern against a tuple component or dereference an
    oid-valued component (the paper's ``school(dean(self X))``)."""
    args = pattern.args
    if isinstance(value, Oid):
        current = bindings
        if args.self_term is not None:
            current = _match_term_value(args.self_term, value, current, ctx)
            if current is None:
                return None
        if args.tuple_var is not None or args.labeled:
            if value.is_nil:
                return None
            attrs = _dereference(value, ctx)
            if attrs is None:
                return None
            inner = Args(
                labeled=args.labeled, tuple_var=args.tuple_var
            )
            # treat the referenced object as a pseudo-fact
            current = match_fact(
                inner, Fact("__deref", attrs, value), current, ctx
            )
        return current
    if isinstance(value, TupleValue):
        if args.self_term is not None:
            inner_oid = value.get(SELF_LABEL)
            if not isinstance(inner_oid, Oid):
                return None
            current = _match_term_value(
                args.self_term, inner_oid, bindings, ctx
            )
            if current is None:
                return None
        else:
            current = bindings
        for label, sub in args.labeled:
            if label not in value:
                return None
            current = _match_term_value(sub, value[label], current, ctx)
            if current is None:
                return None
        if args.tuple_var is not None:
            current = bind(current, args.tuple_var, value)
        return current
    return None


def _dereference(oid: Oid, ctx: MatchContext) -> TupleValue | None:
    """The widest attribute tuple recorded for ``oid`` in any class."""
    best: TupleValue | None = None
    for pred in ctx.schema.class_names:
        stored = ctx.facts.value_of(pred, oid)
        if stored is not None and (
            best is None or len(stored.items) > len(best.items)
        ):
            best = stored
    return best
