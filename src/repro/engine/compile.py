"""Compiled rule bodies: planned joins as specialized closures.

For the fragment that dominates real workloads — positive association
heads, labeled variable/constant body arguments, built-ins over simple
terms — the generic matcher pays for its generality on every candidate
fact: a fresh bindings dict per extension, readiness re-checks per
literal, per-label type dispatch.  :func:`compile_rule` removes that
overhead by specializing a planned rule body into a chain of closures
over a flat register file:

* variables become slots in one reusable ``regs`` list (each chain
  writes every slot it reads earlier in the same traversal, so no
  clearing or undo is needed);
* each positive literal becomes a step that enumerates candidates
  through the same access path the plan chose (oid lookup / hash-index
  bucket / scan) and runs a precompiled op list (bind slot / check
  constant / check slot) over the fact's components;
* fully-bound negations become existence checks, built-ins call the
  shared solvers with precompiled argument getters;
* the head becomes a builder producing the ground
  :class:`~repro.storage.factset.Fact` directly from the registers,
  with class-reference coercion decided at compile time from the
  schema.

Anything outside the fragment (oid invention, class heads, deletion
heads, self/tuple/positional arguments, patterns, active-domain
negation, collection terms in built-ins) returns None and keeps the
generic path — the engine only *uses* a compiled body once the rule's
observed work crosses ``EvalConfig.compile_threshold``, and never under
instrumentation (events must see every valuation) or with indexes
disabled.

Equivalence with the generic matcher is property-tested against the
reference kernel (``tests/test_planned_kernel.py``).  One deliberate
fragment nuance: a repeated body variable checks later occurrences with
:func:`~repro.engine.valuation.values_unify` but never upgrades an
oid binding to an object tuple mid-chain (the generic ``bind`` does);
the schemas in the fragment coerce class-referencing head fields to
oids, so the derived facts are identical.
"""

from __future__ import annotations

from repro.engine.valuation import (
    SELF_LABEL,
    _arith,
    as_oid,
    values_unify,
)
from repro.errors import EvaluationError
from repro.language.ast import (
    ArithExpr,
    BuiltinLiteral,
    Constant,
    Literal,
    Var,
)
from repro.language.builtins import get_builtin
from repro.storage.factset import Fact
from repro.types.descriptors import NamedType
from repro.values.complex import TupleValue

__all__ = ["CompiledRule", "compile_rule"]

# op codes for the per-fact component op list
_BIND = 0  # write the component into a register
_CHECK_CONST = 1  # component must unify with a constant
_CHECK_SLOT = 2  # component must unify with a register

#: index-probe key that matches no stored value (forces a lazy build)
_PROBE = object()

#: runtime types whose values can never contain an oid, so the head
#: builder can stamp the tuple's max-oid cache without a scan
_OIDFREE = (str, int, float, bool)


def _pred_values(facts, pred):
    """All stored tuple values of ``pred`` (class and association),
    without materializing :class:`Fact` wrappers — the compiled scan
    only reads components."""
    ctable = facts._class.get(pred)
    atable = facts._assoc.get(pred)
    if ctable is None:
        return atable if atable is not None else ()
    if atable is None:
        return ctable.values()
    out = list(ctable.values())
    out.extend(atable)
    return out


def _index_bucket(facts, pred, label, key):
    """The (pred, label, key) index bucket, building the lazy index on
    first probe.  The compiled path never runs instrumented, so the
    index-stats accounting in :meth:`FactSet.lookup` is not needed."""
    index = facts._indexes.get(pred)
    by_label = index.get(label) if index is not None else None
    if by_label is None:
        facts.lookup(pred, label, _PROBE)
        by_label = facts._indexes[pred][label]
    return by_label.get(key)


class CompiledRule:
    """One rule specialized into closure chains.

    ``chain(regs, ctx, emit)`` enumerates all valuations of the full
    body; ``seed_chains[pos](fact, regs, ctx, emit)`` enumerates the
    valuations in which body position ``pos`` is matched by ``fact``
    (the semi-naive drivers feed delta facts through these).  ``emit``
    receives the register file with every head variable written;
    :meth:`make_delta_emit` / :meth:`make_round_emit` build the two
    sinks the engine uses.
    """

    __slots__ = ("rule_index", "head_pred", "regs", "chain",
                 "seed_chains", "seed_specs", "head_build",
                 "head_build_value")

    def __init__(self, rule_index, head_pred, nslots, chain, seed_chains,
                 seed_specs, head_build, head_build_value):
        self.rule_index = rule_index
        self.head_pred = head_pred
        self.regs = [None] * nslots
        self.chain = chain
        self.seed_chains = seed_chains
        self.seed_specs = seed_specs  # tuple[(pos, pred)]
        self.head_build = head_build
        self.head_build_value = head_build_value

    def run_full(self, ctx, emit) -> None:
        self.chain(self.regs, ctx, emit)

    def make_delta_emit(self, ctx, deltas, guard, skip_satisfied):
        """Sink mirroring :func:`repro.engine.step._derive_tuple` into a
        :class:`~repro.engine.step.StepDeltas`."""
        build = self.head_build
        facts = ctx.facts
        plus_add = deltas.plus.add
        if guard is None and skip_satisfied:
            def emit(regs):
                fact = build(regs)
                if fact not in facts:
                    plus_add(fact)
            return emit

        def emit(regs):
            fact = build(regs)
            if guard is not None:
                guard.check_fact_size(fact.pred, fact.value)
            if skip_satisfied and fact in facts:
                return
            plus_add(fact)
        return emit

    def make_round_emit(self, facts, fresh, seen, guard):
        """Sink for the compiled semi-naive driver: deduplicate against
        the live state and the current round, collect the survivors.

        ``seen`` maps head predicate → values emitted this round; the
        dedup probes run on the *value* (whose hash is cached) and the
        ``Fact`` wrapper is only built for survivors.  The head is an
        association by construction, so membership in the live state is
        one set probe on the predicate's table — snapshotted here, which
        is safe because the driver batches its adds at round end."""
        build_value = self.head_build_value
        append = fresh.append
        pred = self.head_pred
        table = facts._assoc.get(pred)
        seen_values = seen.setdefault(pred, set())
        seen_add = seen_values.add
        if guard is None:
            if table is None:
                def emit(regs):
                    value = build_value(regs)
                    if value in seen_values:
                        return
                    seen_add(value)
                    append(Fact(pred, value))
                return emit

            def emit(regs):
                value = build_value(regs)
                if value in table or value in seen_values:
                    return
                seen_add(value)
                append(Fact(pred, value))
            return emit

        def emit(regs):
            value = build_value(regs)
            guard.check_fact_size(pred, value)
            if (table is not None and value in table) \
                    or value in seen_values:
                return
            seen_add(value)
            append(Fact(pred, value))
        return emit


# ---------------------------------------------------------------------------
# fragment checks
# ---------------------------------------------------------------------------
def _simple_args(literal: Literal) -> bool:
    args = literal.args
    if args.self_term is not None or args.tuple_var is not None or \
            args.positional:
        return False
    return all(
        isinstance(term, (Var, Constant)) for _, term in args.labeled
    )


def _simple_builtin_term(term) -> bool:
    if isinstance(term, (Var, Constant)):
        return True
    if isinstance(term, ArithExpr):
        return _simple_builtin_term(term.left) and \
            _simple_builtin_term(term.right)
    return False


def _head_compilable(rule, schema) -> bool:
    head = rule.head
    if not isinstance(head, Literal) or head.negated:
        return False
    if schema.is_class(head.pred):
        return False
    args = head.args
    if args.self_term is not None or args.tuple_var is not None or \
            args.positional:
        return False
    return all(
        isinstance(t, (Var, Constant)) or (
            isinstance(t, ArithExpr) and _simple_builtin_term(t)
        )
        for _, t in args.labeled
    )


# ---------------------------------------------------------------------------
# step constructors
# ---------------------------------------------------------------------------
def _positive_steps(literal, bound, slots):
    """(lookup, ops, bound') for one positive literal under ``bound``
    bound variables, or None when outside the fragment.

    ``lookup`` selects candidates exactly as the generic
    ``_candidate_facts`` would: the first labeled constant or
    already-bound variable keys the hash index, otherwise scan.
    """
    if not _simple_args(literal):
        return None
    lookup = None  # ("const", label, value) | ("slot", label, slot)
    ops = []
    now_bound = set(bound)
    for label, term in literal.args.labeled:
        if isinstance(term, Constant):
            if lookup is None:
                value = term.value
                if isinstance(value, TupleValue) and SELF_LABEL in value:
                    value = value[SELF_LABEL]
                lookup = ("const", label, value)
            else:
                ops.append((label, _CHECK_CONST, term.value))
        elif term in now_bound:
            if lookup is None and term in bound:
                lookup = ("slot", label, slots[term])
            else:
                ops.append((label, _CHECK_SLOT, slots[term]))
        else:
            ops.append((label, _BIND, slots[term]))
            now_bound.add(term)
    return lookup, tuple(ops), now_bound


def _positions(pred, schema, labels):
    """(declared arity, component index per label) in the sorted items
    tuple of ``pred``'s effective type, or None when the schema cannot
    say — lets the unrolled steps read ``value.items[i]`` directly
    instead of a linear ``.get`` per component."""
    try:
        decl = sorted(schema.effective_type(pred).labels)
    except Exception:
        return None
    if any(label not in decl for label in labels):
        return None
    return len(decl), tuple(decl.index(label) for label in labels)


def _make_positive(pred, lookup, ops, nxt, schema):
    pred = pred.lower()
    all_bind = all(op == _BIND for _, op, _ in ops)
    terminal = nxt is _TERMINAL
    if lookup is None:
        # full scan over the stored values (no Fact wrappers)
        if all_bind and len(ops) == 1:
            l0, _, s0 = ops[0]
            pos = _positions(pred, schema, (l0,))
            if pos is not None:
                n, (i0,) = pos
                if terminal:
                    def step(regs, ctx, emit):
                        for value in _pred_values(ctx.facts, pred):
                            items = value.items
                            if len(items) == n:
                                p = items[i0]
                                v0 = p[1] if p[0] == l0 else value.get(l0)
                            else:
                                v0 = value.get(l0)
                            if v0 is not None:
                                regs[s0] = v0
                                emit(regs)
                    return step

                def step(regs, ctx, emit):
                    for value in _pred_values(ctx.facts, pred):
                        items = value.items
                        if len(items) == n:
                            p = items[i0]
                            v0 = p[1] if p[0] == l0 else value.get(l0)
                        else:
                            v0 = value.get(l0)
                        if v0 is not None:
                            regs[s0] = v0
                            nxt(regs, ctx, emit)
                return step
        if all_bind and len(ops) == 2:
            (l0, _, s0), (l1, _, s1) = ops
            pos = _positions(pred, schema, (l0, l1))
            if pos is not None:
                n, (i0, i1) = pos
                if terminal:
                    def step(regs, ctx, emit):
                        for value in _pred_values(ctx.facts, pred):
                            items = value.items
                            if len(items) == n:
                                p = items[i0]
                                v0 = p[1] if p[0] == l0 else value.get(l0)
                                p = items[i1]
                                v1 = p[1] if p[0] == l1 else value.get(l1)
                            else:
                                v0 = value.get(l0)
                                v1 = value.get(l1)
                            if v0 is None or v1 is None:
                                continue
                            regs[s0] = v0
                            regs[s1] = v1
                            emit(regs)
                    return step

                def step(regs, ctx, emit):
                    for value in _pred_values(ctx.facts, pred):
                        items = value.items
                        if len(items) == n:
                            p = items[i0]
                            v0 = p[1] if p[0] == l0 else value.get(l0)
                            p = items[i1]
                            v1 = p[1] if p[0] == l1 else value.get(l1)
                        else:
                            v0 = value.get(l0)
                            v1 = value.get(l1)
                        if v0 is None or v1 is None:
                            continue
                        regs[s0] = v0
                        regs[s1] = v1
                        nxt(regs, ctx, emit)
                return step

        def step(regs, ctx, emit):
            for value in _pred_values(ctx.facts, pred):
                for label, op, payload in ops:
                    comp = value.get(label)
                    if comp is None:
                        break
                    if op == _BIND:
                        regs[payload] = comp
                    elif op == _CHECK_CONST:
                        if comp != payload and \
                                not values_unify(payload, comp):
                            break
                    else:
                        expected = regs[payload]
                        if comp != expected and \
                                not values_unify(expected, comp):
                            break
                else:
                    nxt(regs, ctx, emit)
        return step

    kind, klabel, key = lookup
    if kind == "const":
        def step(regs, ctx, emit):
            bucket = _index_bucket(ctx.facts, pred, klabel, key)
            if not bucket:
                return
            for fact in bucket:
                value = fact.value
                for label, op, payload in ops:
                    comp = value.get(label)
                    if comp is None:
                        break
                    if op == _BIND:
                        regs[payload] = comp
                    elif op == _CHECK_CONST:
                        if comp != payload and \
                                not values_unify(payload, comp):
                            break
                    else:
                        expected = regs[payload]
                        if comp != expected and \
                                not values_unify(expected, comp):
                            break
                else:
                    nxt(regs, ctx, emit)
        return step

    kslot = key
    if all_bind and len(ops) == 1:
        l0, _, s0 = ops[0]
        pos = _positions(pred, schema, (l0,))
        if pos is not None:
            n, (i0,) = pos
            if terminal:
                def step(regs, ctx, emit):
                    kval = regs[kslot]
                    if isinstance(kval, TupleValue) and SELF_LABEL in kval:
                        kval = kval[SELF_LABEL]
                    facts_ = ctx.facts
                    index = facts_._indexes.get(pred)
                    by_label = index.get(klabel) \
                        if index is not None else None
                    if by_label is None:
                        facts_.lookup(pred, klabel, _PROBE)
                        by_label = facts_._indexes[pred][klabel]
                    bucket = by_label.get(kval)
                    if not bucket:
                        return
                    for fact in bucket:
                        value = fact.value
                        items = value.items
                        if len(items) == n:
                            p = items[i0]
                            v0 = p[1] if p[0] == l0 else value.get(l0)
                        else:
                            v0 = value.get(l0)
                        if v0 is not None:
                            regs[s0] = v0
                            emit(regs)
                return step

            def step(regs, ctx, emit):
                kval = regs[kslot]
                if isinstance(kval, TupleValue) and SELF_LABEL in kval:
                    kval = kval[SELF_LABEL]  # object binding at oid slot
                bucket = _index_bucket(ctx.facts, pred, klabel, kval)
                if not bucket:
                    return
                for fact in bucket:
                    value = fact.value
                    items = value.items
                    if len(items) == n:
                        p = items[i0]
                        v0 = p[1] if p[0] == l0 else value.get(l0)
                    else:
                        v0 = value.get(l0)
                    if v0 is not None:
                        regs[s0] = v0
                        nxt(regs, ctx, emit)
            return step
        if terminal:
            def step(regs, ctx, emit):
                kval = regs[kslot]
                if isinstance(kval, TupleValue) and SELF_LABEL in kval:
                    kval = kval[SELF_LABEL]
                bucket = _index_bucket(ctx.facts, pred, klabel, kval)
                if not bucket:
                    return
                for fact in bucket:
                    v0 = fact.value.get(l0)
                    if v0 is not None:
                        regs[s0] = v0
                        emit(regs)
            return step

        def step(regs, ctx, emit):
            kval = regs[kslot]
            if isinstance(kval, TupleValue) and SELF_LABEL in kval:
                kval = kval[SELF_LABEL]  # object binding at oid position
            bucket = _index_bucket(ctx.facts, pred, klabel, kval)
            if not bucket:
                return
            for fact in bucket:
                v0 = fact.value.get(l0)
                if v0 is not None:
                    regs[s0] = v0
                    nxt(regs, ctx, emit)
        return step

    def step(regs, ctx, emit):
        kval = regs[kslot]
        if isinstance(kval, TupleValue) and SELF_LABEL in kval:
            kval = kval[SELF_LABEL]  # object binding at oid position
        bucket = _index_bucket(ctx.facts, pred, klabel, kval)
        if not bucket:
            return
        for fact in bucket:
            value = fact.value
            for label, op, payload in ops:
                comp = value.get(label)
                if comp is None:
                    break
                if op == _BIND:
                    regs[payload] = comp
                elif op == _CHECK_CONST:
                    if comp != payload and \
                            not values_unify(payload, comp):
                        break
                else:
                    expected = regs[payload]
                    if comp != expected and \
                            not values_unify(expected, comp):
                        break
            else:
                nxt(regs, ctx, emit)
    return step


def _make_negation(pred, lookup, ops, nxt):
    """A fully-bound negated literal: fail when any candidate passes
    every check (all ops are checks — nothing binds)."""
    pred = pred.lower()

    def candidates(regs, ctx):
        if lookup is None:
            return _pred_values(ctx.facts, pred)
        kind, klabel, key = lookup
        if kind == "slot":
            key = regs[key]
            if isinstance(key, TupleValue) and SELF_LABEL in key:
                key = key[SELF_LABEL]
        bucket = _index_bucket(ctx.facts, pred, klabel, key)
        if bucket is None:
            return ()
        return [f.value for f in bucket]

    def step(regs, ctx, emit):
        for value in candidates(regs, ctx):
            for label, op, payload in ops:
                comp = value.get(label)
                if comp is None:
                    break
                expected = payload if op == _CHECK_CONST else regs[payload]
                if comp != expected and \
                        not values_unify(expected, comp):
                    break
            else:
                return  # a witness exists: the negation fails
        nxt(regs, ctx, emit)
    return step


def _make_getter(term, bound, slots):
    """regs -> resolved argument value (or the Var itself when the plan
    leaves it unbound at this point, mirroring ``_solve_builtin``)."""
    if isinstance(term, Constant):
        value = term.value
        return lambda regs: value
    if isinstance(term, Var):
        if term in bound:
            slot = slots[term]
            return lambda regs: regs[slot]
        return lambda regs: term
    if isinstance(term, ArithExpr):
        left = _make_getter(term.left, bound, slots)
        right = _make_getter(term.right, bound, slots)
        if left is None or right is None:
            return None
        op = term.op
        return lambda regs: _arith(op, left(regs), right(regs))
    return None


def _make_builtin(blit, bound, slots):
    """(step, bound') for one builtin literal, or None outside the
    fragment.  Unbound Var arguments pass through as placeholders; the
    solver's extra bindings land in their registers."""
    builtin = get_builtin(blit.name)
    getters = []
    unbound_ok = True
    for term in blit.args:
        getter = _make_getter(term, bound, slots)
        if getter is None:
            return None
        if not isinstance(term, (Var, Constant)) and \
                not set(term.variables()) <= bound:
            unbound_ok = False
        getters.append(getter)
    if not unbound_ok:
        return None
    getters = tuple(getters)
    solve = builtin.solve
    out_slots = {
        v: slots[v]
        for t in blit.args
        if isinstance(t, Var) and t not in bound
        for v in (t,)
    }
    now_bound = bound | {
        v for t in blit.args for v in t.variables()
    }
    if blit.negated:
        if out_slots:
            return None  # generic path raises; keep its behaviour

        def make(nxt):
            def step(regs, ctx, emit):
                for _ in solve([g(regs) for g in getters]):
                    return
                nxt(regs, ctx, emit)
            return step
        return make, bound

    def make(nxt):
        if not out_slots:
            def step(regs, ctx, emit):
                for _ in solve([g(regs) for g in getters]):
                    nxt(regs, ctx, emit)
            return step

        def step(regs, ctx, emit):
            for extra in solve([g(regs) for g in getters]):
                for var, value in extra.items():
                    regs[out_slots[var]] = value
                nxt(regs, ctx, emit)
        return step
    return make, now_bound


def _terminal_step(regs, ctx, emit):
    emit(regs)


#: shared tail of every chain; steps test ``nxt is _TERMINAL`` to fuse
#: the final hop into a direct ``emit(regs)`` call
_TERMINAL = _terminal_step


def _compile_chain(body, order, bound0, slots, schema):
    """Compile ``[body[i] for i in order]`` into one closure chain, or
    None when a literal falls outside the fragment.  Steps are built
    front to back (tracking the bound set), then chained in reverse."""
    makers = []
    bound = set(bound0)
    for pos in order:
        literal = body[pos]
        if isinstance(literal, Literal):
            if literal.negated:
                if not set(literal.variables()) <= bound:
                    return None  # active-domain negation: generic only
                compiled = _positive_steps(literal, bound, slots)
                if compiled is None:
                    return None
                lookup, ops, _ = compiled
                pred = literal.pred
                makers.append(
                    lambda nxt, p=pred, lk=lookup, o=ops:
                    _make_negation(p, lk, o, nxt)
                )
            else:
                compiled = _positive_steps(literal, bound, slots)
                if compiled is None:
                    return None
                lookup, ops, bound = compiled
                pred = literal.pred
                makers.append(
                    lambda nxt, p=pred, lk=lookup, o=ops:
                    _make_positive(p, lk, o, nxt, schema)
                )
        elif isinstance(literal, BuiltinLiteral):
            compiled = _make_builtin(literal, bound, slots)
            if compiled is None:
                return None
            make, bound = compiled
            makers.append(make)
        else:
            return None
    chain = _TERMINAL
    for make in reversed(makers):
        chain = make(chain)
    return chain


def _seed_ops(literal, slots):
    """The op list matching a delta fact against the seed literal (no
    candidate enumeration: the fact is given)."""
    ops = []
    bound: set[Var] = set()
    for label, term in literal.args.labeled:
        if isinstance(term, Constant):
            ops.append((label, _CHECK_CONST, term.value))
        elif term in bound:
            ops.append((label, _CHECK_SLOT, slots[term]))
        else:
            ops.append((label, _BIND, slots[term]))
            bound.add(term)
    return tuple(ops), bound


def _make_seed(ops, rest_chain, pred, schema):
    terminal = rest_chain is _TERMINAL
    if all(op == _BIND for _, op, _ in ops):
        if len(ops) == 1:
            l0, _, s0 = ops[0]
            pos = _positions(pred, schema, (l0,))
            if pos is not None:
                n, (i0,) = pos
                if terminal:
                    def seed(fact, regs, ctx, emit):
                        value = fact.value
                        items = value.items
                        if len(items) == n:
                            p = items[i0]
                            v0 = p[1] if p[0] == l0 else value.get(l0)
                        else:
                            v0 = value.get(l0)
                        if v0 is not None:
                            regs[s0] = v0
                            emit(regs)
                    return seed

                def seed(fact, regs, ctx, emit):
                    value = fact.value
                    items = value.items
                    if len(items) == n:
                        p = items[i0]
                        v0 = p[1] if p[0] == l0 else value.get(l0)
                    else:
                        v0 = value.get(l0)
                    if v0 is not None:
                        regs[s0] = v0
                        rest_chain(regs, ctx, emit)
                return seed
            if terminal:
                def seed(fact, regs, ctx, emit):
                    v0 = fact.value.get(l0)
                    if v0 is not None:
                        regs[s0] = v0
                        emit(regs)
                return seed

            def seed(fact, regs, ctx, emit):
                v0 = fact.value.get(l0)
                if v0 is not None:
                    regs[s0] = v0
                    rest_chain(regs, ctx, emit)
            return seed
        if len(ops) == 2:
            (l0, _, s0), (l1, _, s1) = ops
            pos = _positions(pred, schema, (l0, l1))
            if pos is not None:
                n, (i0, i1) = pos
                if terminal:
                    def seed(fact, regs, ctx, emit):
                        value = fact.value
                        items = value.items
                        if len(items) == n:
                            p = items[i0]
                            v0 = p[1] if p[0] == l0 else value.get(l0)
                            p = items[i1]
                            v1 = p[1] if p[0] == l1 else value.get(l1)
                        else:
                            v0 = value.get(l0)
                            v1 = value.get(l1)
                        if v0 is None or v1 is None:
                            return
                        regs[s0] = v0
                        regs[s1] = v1
                        emit(regs)
                    return seed

                def seed(fact, regs, ctx, emit):
                    value = fact.value
                    items = value.items
                    if len(items) == n:
                        p = items[i0]
                        v0 = p[1] if p[0] == l0 else value.get(l0)
                        p = items[i1]
                        v1 = p[1] if p[0] == l1 else value.get(l1)
                    else:
                        v0 = value.get(l0)
                        v1 = value.get(l1)
                    if v0 is None or v1 is None:
                        return
                    regs[s0] = v0
                    regs[s1] = v1
                    rest_chain(regs, ctx, emit)
                return seed
            if terminal:
                def seed(fact, regs, ctx, emit):
                    value = fact.value
                    v0 = value.get(l0)
                    if v0 is None:
                        return
                    v1 = value.get(l1)
                    if v1 is None:
                        return
                    regs[s0] = v0
                    regs[s1] = v1
                    emit(regs)
                return seed

            def seed(fact, regs, ctx, emit):
                value = fact.value
                v0 = value.get(l0)
                if v0 is None:
                    return
                v1 = value.get(l1)
                if v1 is None:
                    return
                regs[s0] = v0
                regs[s1] = v1
                rest_chain(regs, ctx, emit)
            return seed

    def seed(fact, regs, ctx, emit):
        value = fact.value
        for label, op, payload in ops:
            comp = value.get(label)
            if comp is None:
                return
            if op == _BIND:
                regs[payload] = comp
            elif op == _CHECK_CONST:
                if comp != payload and not values_unify(payload, comp):
                    return
            else:
                expected = regs[payload]
                if comp != expected and not values_unify(expected, comp):
                    return
        rest_chain(regs, ctx, emit)
    return seed


def _head_builder(head, schema, slots):
    pred = head.pred
    parts = []
    simple = True  # every field a plain Var, no class-reference coercion
    for label, term in head.args.labeled:
        getter = _make_getter(term, set(slots), slots)
        if getter is None:
            return None
        declared = schema.field_type(pred, label)
        coerce = isinstance(declared, NamedType) and schema.is_class(
            declared.name
        )
        refname = declared.name if coerce else None
        if coerce or not isinstance(term, Var):
            simple = False
        parts.append((label, getter, coerce, refname))
    if simple:
        slot_parts = sorted(
            (label, slots[term]) for label, term in head.args.labeled
        )
        from_sorted = TupleValue.from_sorted_items
        if len(slot_parts) == 2:
            (la, sa), (lb, sb) = slot_parts

            def build_value(regs):
                va = regs[sa]
                vb = regs[sb]
                tv = from_sorted(((la, va), (lb, vb)))
                if type(va) in _OIDFREE and type(vb) in _OIDFREE:
                    object.__setattr__(tv, "_max_oid", 0)
                return tv

            def build(regs):
                return Fact(pred, build_value(regs))
            return build, build_value
        if len(slot_parts) == 1:
            ((la, sa),) = slot_parts

            def build_value(regs):
                va = regs[sa]
                tv = from_sorted(((la, va),))
                if type(va) in _OIDFREE:
                    object.__setattr__(tv, "_max_oid", 0)
                return tv

            def build(regs):
                return Fact(pred, build_value(regs))
            return build, build_value

        def build_value(regs):
            return from_sorted(
                tuple((label, regs[slot]) for label, slot in slot_parts)
            )

        def build(regs):
            return Fact(pred, build_value(regs))
        return build, build_value
    # TupleValue stores items sorted; pre-sort so the hot path skips
    # the per-fact dict + sort of the general constructor
    parts.sort(key=lambda p: p[0])
    parts = tuple(parts)
    from_sorted = TupleValue.from_sorted_items

    def build_value(regs):
        items = []
        for label, getter, coerce, refname in parts:
            value = getter(regs)
            if coerce:
                oid = as_oid(value)
                if oid is None:
                    raise EvaluationError(
                        f"field {label!r} of {pred!r} references class"
                        f" {refname!r} but got non-object value {value!r}"
                    )
                value = oid
            items.append((label, value))
        return from_sorted(tuple(items))

    def build(regs):
        return Fact(pred, build_value(regs))
    return build, build_value


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def compile_rule(runtime, plan, schema) -> CompiledRule | None:
    """Specialize one planned rule, or None when outside the fragment."""
    rule = runtime.rule
    if plan is None or plan.order is None:
        return None
    if not _head_compilable(rule, schema):
        return None
    body = tuple(rule.body)
    variables = []
    for literal in body:
        variables.extend(literal.variables())
    variables.extend(rule.head.variables())
    slots: dict[Var, int] = {}
    for var in variables:
        if var not in slots:
            slots[var] = len(slots)
    chain = _compile_chain(body, plan.order, set(), slots, schema)
    if chain is None:
        return None
    builders = _head_builder(rule.head, schema, slots)
    if builders is None:
        return None
    head_build, head_build_value = builders
    seed_chains = {}
    seed_specs = []
    for pos, literal in enumerate(body):
        if not isinstance(literal, Literal) or literal.negated:
            continue
        rest_order = plan.delta_orders.get(pos)
        if rest_order is None:
            return None  # a seed position the planner could not order
        if not _simple_args(literal):
            return None
        ops, seed_bound = _seed_ops(literal, slots)
        rest_chain = _compile_chain(body, rest_order, seed_bound, slots,
                                    schema)
        if rest_chain is None:
            return None
        seed_chains[pos] = _make_seed(ops, rest_chain,
                                      literal.pred.lower(), schema)
        seed_specs.append((pos, literal.pred.lower()))
    return CompiledRule(
        rule_index=runtime.index,
        head_pred=rule.head.pred,
        nslots=len(slots),
        chain=chain,
        seed_chains=seed_chains,
        seed_specs=tuple(seed_specs),
        head_build=head_build,
        head_build_value=head_build_value,
    )
