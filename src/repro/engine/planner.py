"""Cost-based rule planning: literal orders chosen from live statistics.

The paper's LOGRES prototype compiles rules into ALGRES algebra and
relies on an optimizer to make rule programs practical; this module is
that optimizer, unified for both evaluation paths:

* **Body planning** — :func:`build_plan` reorders each rule body per
  stratum using per-literal selectivity estimated from the live
  :class:`~repro.storage.factset.FactSet` index statistics (predicate
  cardinalities and distinct-value counts per indexed position) plus,
  when an instrumented run supplies one, the observed ``join_fanout``
  metrics of earlier runs.  Bound variables propagate left to right,
  the cheapest (smallest estimated candidate set) positive literal runs
  first, and negations / built-ins are pushed to their earliest legal
  position — the static mirror of the greedy runtime scheduler in
  :mod:`repro.engine.step`.
* **Algebraic identities** — :func:`optimize` applies the classical
  equivalences (selection fusion and pushdown, projection cascade,
  rename merging) to ALGRES expressions; :func:`static_literal_order`
  gives the LOGRES→ALGRES compiler the same join order the engine
  would pick.  The identities live in :mod:`repro.algres.optimize`
  (below the engine in the import graph) and are re-exported here, so
  this module is the one optimizer surface for both evaluation paths:
  join orders and rewrites each exist exactly once.

A plan is advisory: when a body cannot be ordered statically (a literal
would never become schedulable), :func:`build_plan` records a fallback
and the engine keeps the dynamic scheduler, preserving error behaviour
bit for bit.  Plans are observable — each one is emitted as a
:class:`~repro.observability.events.PlanChosen` event and surfaces in
``repro profile`` / run reports / ``repro plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algres.optimize import (  # noqa: F401  (one-optimizer surface)
    condition_fields,
    optimize,
    rename_condition,
)
from repro.language.ast import (
    BuiltinLiteral,
    Constant,
    Literal,
    Pattern,
    Term,
    Var,
)
from repro.language.builtins import RESULT_LAST

__all__ = [
    "Plan",
    "RulePlan",
    "LiteralStep",
    "Stats",
    "build_plan",
    "static_literal_order",
    "optimize",
    "condition_fields",
    "rename_condition",
]


# ---------------------------------------------------------------------------
# live statistics
# ---------------------------------------------------------------------------
class Stats:
    """Selectivity statistics over a fact set.

    ``card(pred)`` is the live cardinality, except that a *derivable*
    predicate that is still empty at planning time is floored to the
    largest relation size: recursive predicates start empty but rarely
    stay small, and the floor keeps them from being falsely preferred
    over the extensional relations that seed them.

    ``distinct(pred, label)`` counts distinct values at an indexed
    position (one lazy index build, shared with evaluation), so an
    indexed probe is estimated at ``card / distinct`` candidates.  When
    a :class:`~repro.observability.metrics.MetricsRegistry` from an
    earlier instrumented run is supplied, the observed mean
    ``join_fanout`` per predicate overrides that estimate — the PR 3
    feedback loop.
    """

    def __init__(self, facts, idb_preds=(), metrics=None):
        self._facts = facts
        self._idb = {p.lower() for p in idb_preds}
        self._metrics = metrics
        self._card: dict[str, float] = {}
        self._distinct: dict[tuple[str, str], float] = {}
        counts = [facts.count(p) for p in facts.predicates()]
        self._floor = float(max(counts)) if counts else 1.0

    def card(self, pred: str) -> float:
        pred = pred.lower()
        cached = self._card.get(pred)
        if cached is None:
            n = float(self._facts.count(pred))
            if n == 0.0 and pred in self._idb:
                n = max(self._floor, 1.0)
            cached = self._card[pred] = n
        return cached

    def distinct(self, pred: str, label: str) -> float:
        key = (pred.lower(), label)
        cached = self._distinct.get(key)
        if cached is None:
            cached = float(
                max(1, self._facts.distinct_count(key[0], label))
            )
            self._distinct[key] = cached
        return cached

    def observed_fanout(self, pred: str) -> float | None:
        if self._metrics is None:
            return None
        hist = self._metrics.histogram(
            "join_fanout", (("pred", pred.lower()),)
        )
        if hist is None or not hist.count:
            return None
        return max(1.0, hist.mean)

    def indexed_estimate(self, pred: str, label: str) -> float:
        observed = self.observed_fanout(pred)
        if observed is not None:
            return observed
        return max(1.0, self.card(pred) / self.distinct(pred, label))


class _NeutralStats:
    """Stats stand-in when no fact set is available (static planning for
    the ALGRES compiler): every relation the same size, every index
    selective, so ordering is driven purely by bound-variable
    propagation with the textual order as tie-break."""

    def card(self, pred: str) -> float:
        return 1000.0

    def indexed_estimate(self, pred: str, label: str) -> float:
        return 100.0


# ---------------------------------------------------------------------------
# plan objects
# ---------------------------------------------------------------------------
@dataclass
class LiteralStep:
    """One scheduled body literal with its cost estimate."""

    pos: int  # original body position
    kind: str  # "literal" | "negation" | "builtin"
    access: str  # "self" | "index:<label>" | "scan" | "filter"
    est: float
    text: str

    def to_dict(self) -> dict:
        return {
            "pos": self.pos,
            "kind": self.kind,
            "access": self.access,
            "est": round(self.est, 3),
            "literal": self.text,
        }


@dataclass
class RulePlan:
    """The chosen evaluation order for one rule body.

    ``order`` is a permutation of body positions (None when planning
    fell back to the dynamic scheduler, with ``fallback`` saying why);
    ``delta_orders`` maps each positive body position to the order of
    the *remaining* literals when that position is seeded by a delta
    fact (the semi-naive drivers use these).
    """

    index: int
    label: str
    order: tuple[int, ...] | None
    steps: list[LiteralStep] = field(default_factory=list)
    delta_orders: dict[int, tuple[int, ...] | None] = field(
        default_factory=dict
    )
    cost: float = 0.0
    fallback: str | None = None

    @property
    def reordered(self) -> bool:
        return self.order is not None and \
            self.order != tuple(range(len(self.order)))

    def to_dict(self) -> dict:
        return {
            "rule": self.index,
            "label": self.label,
            "order": list(self.order) if self.order is not None else None,
            "cost": round(self.cost, 3),
            "fallback": self.fallback,
            "steps": [s.to_dict() for s in self.steps],
            "delta_orders": {
                str(pos): (list(order) if order is not None else None)
                for pos, order in self.delta_orders.items()
            },
        }


@dataclass
class Plan:
    """Every rule's plan for one (semantics, stratum) scope.

    ``independent_groups`` are the scope's independence certificates
    (:mod:`repro.analysis.interference`): groups of rule indexes
    provably order-insensitive.  The engine reorders rules only within
    a group; ``repro plan`` and ``repro analyze`` emit the same
    partition.
    """

    semantics: str
    rules: list[RulePlan] = field(default_factory=list)
    stratum: int | None = None
    independent_groups: list[list[int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "semantics": self.semantics,
            "stratum": self.stratum,
            "rules": [rp.to_dict() for rp in self.rules],
            "independent_groups": [
                list(g) for g in self.independent_groups
            ],
        }

    def render_text(self) -> str:
        scope = self.semantics
        if self.stratum is not None:
            scope += f", stratum {self.stratum}"
        lines = [f"plan ({scope})"]
        if self.independent_groups:
            groups = " ".join(
                "{" + ", ".join(f"r{i}" for i in g) + "}"
                for g in self.independent_groups
            )
            lines.append(f"  independent groups: {groups}")
        for rp in self.rules:
            lines.append(f"  rule {rp.index}: {rp.label}")
            if rp.order is None:
                lines.append(
                    f"    dynamic fallback: {rp.fallback or 'unplannable'}"
                )
                continue
            for i, step in enumerate(rp.steps, 1):
                lines.append(
                    f"    {i}. {step.text}  [{step.access},"
                    f" est {step.est:g}]"
                )
            lines.append(f"    total est {rp.cost:g}"
                         + ("  (reordered)" if rp.reordered else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# static schedulability (mirrors of the runtime scheduler)
# ---------------------------------------------------------------------------
def _required_vars(term: Term) -> set[Var]:
    """Variables that must be bound before ``term`` can appear at a
    fact component without the matcher raising (complex terms resolve;
    variables, constants and patterns bind structurally)."""
    if isinstance(term, (Var, Constant)):
        return set()
    if isinstance(term, Pattern):
        req: set[Var] = set()
        if term.args.self_term is not None:
            req |= _required_vars(term.args.self_term)
        for _, sub in term.args.labeled:
            req |= _required_vars(sub)
        return req
    return set(term.variables())


def _never_resolvable(term: Term) -> bool:
    """resolve_term raises EvaluationError on these regardless of
    bindings (patterns carrying self/tuple variables)."""
    if isinstance(term, Pattern):
        if term.args.self_term is not None or \
                term.args.tuple_var is not None:
            return True
        return any(_never_resolvable(s) for _, s in term.args.labeled)
    subs = getattr(term, "elements", None)
    if subs is not None:
        return any(_never_resolvable(s) for s in subs)
    for attr in ("left", "right"):
        sub = getattr(term, attr, None)
        if sub is not None and _never_resolvable(sub):
            return True
    return False


def _positive_schedulable(literal: Literal, bound: set[Var]) -> bool:
    args = literal.args
    if args.positional:
        return False
    if args.self_term is not None and \
            not _required_vars(args.self_term) <= bound:
        return False
    return all(
        _required_vars(term) <= bound for _, term in args.labeled
    )


def _negative_schedulable(
    literal: Literal, bound: set[Var], ad_vars: set[Var]
) -> bool:
    return all(
        v in bound or v in ad_vars for v in literal.variables()
    )


def _builtin_schedulable(blit: BuiltinLiteral, bound: set[Var]) -> bool:
    def resolvable(t: Term) -> bool:
        if _never_resolvable(t):
            return False
        return set(t.variables()) <= bound

    def var_or_resolvable(t: Term) -> bool:
        return isinstance(t, Var) or resolvable(t)

    name = blit.name
    if blit.negated:
        return all(resolvable(t) for t in blit.args)
    if name == "=" and len(blit.args) == 2:
        left, right = blit.args
        return (resolvable(left) and var_or_resolvable(right)) or (
            resolvable(right) and var_or_resolvable(left)
        )
    if name == "member" and len(blit.args) == 2:
        element, coll = blit.args
        return resolvable(coll) and var_or_resolvable(element)
    if name in RESULT_LAST and blit.args:
        *inputs, result = blit.args
        return all(resolvable(t) for t in inputs) and var_or_resolvable(
            result
        )
    return all(resolvable(t) for t in blit.args)


def _access_path(
    literal: Literal, bound: set[Var], stats
) -> tuple[str, float]:
    """How the matcher will enumerate candidates under ``bound``, and
    the estimated candidate count — the same access selection as
    :func:`repro.engine.valuation._candidate_facts`."""
    args = literal.args
    if args.self_term is not None:
        term = args.self_term
        if isinstance(term, Constant) or (
            isinstance(term, Var) and term in bound
        ):
            return "self", 1.0
    for label, term in args.labeled:
        if isinstance(term, Constant) or (
            isinstance(term, Var) and term in bound
        ):
            return f"index:{label}", stats.indexed_estimate(
                literal.pred, label
            )
    return "scan", stats.card(literal.pred)


def _order_body(
    body: tuple,
    bound0: set[Var],
    ad_vars: set[Var],
    stats,
    render,
) -> tuple[tuple[int, ...] | None, list[LiteralStep], float, str | None]:
    """Greedy static schedule of ``body`` starting from ``bound0``.

    Negations and built-ins run at their earliest legal position (they
    only filter or bind cheaply); among schedulable positive literals
    the cheapest access path wins, ties resolved by textual order.
    Returns (order, steps, cost, fallback_reason).
    """
    pending = list(range(len(body)))
    bound = set(bound0)
    order: list[int] = []
    steps: list[LiteralStep] = []
    cost = 0.0
    while pending:
        chosen = None
        # negations / builtins first, in textual order
        for pos in pending:
            lit = body[pos]
            if isinstance(lit, Literal):
                if lit.negated and _negative_schedulable(lit, bound,
                                                         ad_vars):
                    chosen = (pos, "negation", "filter", 1.0)
                    break
            elif _builtin_schedulable(lit, bound):
                chosen = (pos, "builtin", "filter", 1.0)
                break
        if chosen is None:
            best = None
            for pos in pending:
                lit = body[pos]
                if not isinstance(lit, Literal) or lit.negated:
                    continue
                if not _positive_schedulable(lit, bound):
                    continue
                access, est = _access_path(lit, bound, stats)
                if best is None or est < best[3]:
                    best = (pos, "literal", access, est)
            chosen = best
        if chosen is None:
            stuck = ", ".join(render(body[p]) for p in pending)
            return None, steps, cost, f"unschedulable: {stuck}"
        pos, kind, access, est = chosen
        pending.remove(pos)
        order.append(pos)
        cost += est
        steps.append(LiteralStep(pos, kind, access, est,
                                 render(body[pos])))
        bound |= set(body[pos].variables())
    return tuple(order), steps, cost, None


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------
def build_plan(
    runtimes,
    facts,
    schema,
    metrics=None,
    semantics: str = "inflationary",
    stratum: int | None = None,
    program_inventors: int | None = None,
) -> Plan:
    """Plan every rule of one scope against the live ``facts``.

    ``runtimes`` are :class:`~repro.engine.step.RuleRuntime` objects
    (the safety report supplies each rule's active-domain variables);
    derivable predicates are the heads of the given rules, which is
    what the cardinality floor of :class:`Stats` keys on.

    ``program_inventors`` is the count of oid-inventing rules in the
    *whole program* (not just this scope); with two or more, every
    independence certificate degrades to a singleton (reordering could
    interleave fresh-oid numbering across strata).  ``None`` falls back
    to counting inventors in this scope.
    """
    from repro.analysis.effects import rule_effects
    from repro.analysis.interference import (
        independent_groups,
        interference_edges,
    )
    from repro.language.pretty import render_rule

    idb = {
        r.rule.head.pred
        for r in runtimes
        if isinstance(r.rule.head, Literal)
    }
    stats = Stats(facts, idb, metrics=metrics)
    plan = Plan(semantics=semantics, stratum=stratum)
    for runtime in runtimes:
        body = tuple(runtime.rule.body)
        ad_vars = set(runtime.safety.active_domain_vars)
        order, steps, cost, fallback = _order_body(
            body, set(), ad_vars, stats, repr
        )
        rp = RulePlan(
            index=runtime.index,
            label=render_rule(runtime.rule).strip(),
            order=order,
            steps=steps,
            cost=cost,
            fallback=fallback,
        )
        if order is not None:
            for pos, lit in enumerate(body):
                if not isinstance(lit, Literal) or lit.negated:
                    continue
                rest = body[:pos] + body[pos + 1:]
                seed_bound = set(lit.variables())
                sub_order, _, _, sub_fallback = _order_body(
                    rest, seed_bound, ad_vars, stats, repr
                )
                if sub_order is None or sub_fallback is not None:
                    rp.delta_orders[pos] = None
                else:
                    # map positions in ``rest`` back to body positions
                    restmap = [i for i in range(len(body)) if i != pos]
                    rp.delta_orders[pos] = tuple(
                        restmap[i] for i in sub_order
                    )
        plan.rules.append(rp)

    effects = [
        rule_effects(r.index, r.rule, r.safety, schema)
        for r in runtimes
        if r.rule.head is not None
    ]
    if program_inventors is None:
        program_inventors = sum(1 for e in effects if e.invents_oid)
    plan.independent_groups = independent_groups(
        [e.index for e in effects],
        interference_edges(effects, schema),
        multi_inventor=program_inventors >= 2,
    )
    return plan


def static_literal_order(literals) -> list[int]:
    """Join order for a list of *positive* literals with no statistics:
    bound-variable propagation with neutral cardinalities, ties in
    textual order.  The LOGRES→ALGRES compiler uses this so its join
    trees follow the same planner as the engine."""
    body = tuple(literals)
    order, _, _, fallback = _order_body(
        body, set(), set(), _NeutralStats(), repr
    )
    if order is None or fallback is not None:
        return list(range(len(body)))
    return list(order)
