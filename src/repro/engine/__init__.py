"""Bottom-up evaluation engine: Appendix B semantics.

* :mod:`repro.engine.valuation` — term resolution and literal matching;
* :mod:`repro.engine.step` — Δ⁺ / Δ⁻ and the one-step inflationary operator;
* :mod:`repro.engine.fixpoint` — the inflationary, stratified, and
  non-inflationary fixpoint computations, plus the semi-naive fast path;
* :mod:`repro.engine.goals` — goal answering over a computed instance.
"""

from repro.engine.fixpoint import Engine, EvalConfig, Semantics
from repro.engine.goals import answer_goal
from repro.engine.guards import ResourceGuard

__all__ = [
    "Engine", "EvalConfig", "ResourceGuard", "Semantics", "answer_goal",
]
