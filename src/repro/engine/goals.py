"""Goal answering.

A goal ``?- L1, ..., Ln`` is a conjunctive query over a computed instance.
Answers are bindings of the goal's variables; oid-valued bindings are
returned as :class:`~repro.values.oids.Oid` objects (user-facing renderers
should hide them, as oids are not visible to users — Section 2.1).
"""

from __future__ import annotations

from repro.engine.activedomain import ActiveDomains
from repro.engine.step import RuleRuntime, evaluate_body
from repro.engine.valuation import SELF_LABEL, MatchContext
from repro.language.analysis import (
    check_safety,
    check_types,
    resolve_goal,
    schema_with_functions,
)
from repro.language.ast import Goal, Rule, Var
from repro.storage.factset import FactSet
from repro.types.schema import Schema
from repro.values.complex import TupleValue, Value


def answer_goal(
    goal: Goal, facts: FactSet, schema: Schema
) -> list[dict[str, Value]]:
    """All answers to ``goal`` against ``facts``.

    Each answer maps variable names to values.  Variables bound to whole
    objects (tuple variables over classes) are reported as their attribute
    tuples with the hidden ``self`` oid removed; duplicate answers are
    collapsed.
    """
    extended = schema_with_functions(schema)
    resolved = resolve_goal(goal, extended)
    pseudo = Rule(None, resolved.literals)
    safety = check_safety(pseudo, extended)
    varinfo = check_types(pseudo, extended)
    runtime = RuleRuntime(index=-1, rule=pseudo, safety=safety,
                          varinfo=varinfo)
    ctx = MatchContext(facts, extended)
    domains = ActiveDomains(facts, extended)
    answers: list[dict[str, Value]] = []
    seen: set[tuple] = set()
    wanted = [v for v in resolved.variables()
              if not v.name.startswith("_G")]
    for bindings in evaluate_body(runtime, ctx, domains):
        answer = {
            var.name: _present(bindings[var])
            for var in wanted
            if var in bindings
        }
        key = tuple(sorted((k, repr(v)) for k, v in answer.items()))
        if key not in seen:
            seen.add(key)
            answers.append(answer)
    return answers


def _present(value: Value) -> Value:
    if isinstance(value, TupleValue) and SELF_LABEL in value:
        return value.without(SELF_LABEL)
    return value


def goal_holds(goal: Goal, facts: FactSet, schema: Schema) -> bool:
    """Boolean satisfaction: does the goal have at least one answer?"""
    return bool(answer_goal(goal, facts, schema))
