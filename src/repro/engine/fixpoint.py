"""Fixpoint computation: inflationary, stratified, non-inflationary.

The **inflationary** deterministic semantics (Appendix B) iterates the
one-step operator ``Fⁱ⁺¹ = ((Fⁱ ⊕ Δ⁺) − Δ⁻) ⊕ (Fⁱ ∩ Δ⁺ ∩ Δ⁻)`` from
``F⁰ = E`` until ``Fⁱ⁺¹ = Fⁱ``.  It gives a *uniform* meaning to every
LOGRES program, stratified or not.

The **stratified** semantics evaluates the strata produced by
:func:`repro.language.analysis.stratify` in order, running the
inflationary operator within each stratum — which yields the perfect
model for stratified programs (Section 3.1).

The **non-inflationary** semantics recomputes ``Fⁱ⁺¹`` from the
extensional database and the facts derivable from ``Fⁱ`` alone; it may
oscillate, which is detected and reported.

A **semi-naive** fast path handles the positive, deletion-free,
invention-free fragment: each iteration only re-joins rule bodies through
the facts that are new since the previous iteration.  It computes the same
fixpoint as the inflationary operator on that fragment (property-tested)
and is the configuration benchmarked against the naive evaluator.

Termination is undecidable (Appendix B), so every loop is guarded by the
iteration / fact / invention budgets of :class:`EvalConfig` and raises
:class:`~repro.errors.NonTerminationError` when exceeded.
"""

from __future__ import annotations

import enum
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import (
    EvalBudgetExceeded,
    EvaluationError,
    NonTerminationError,
)
from repro.observability.instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
)
from repro.engine.activedomain import ActiveDomains
from repro.engine.guards import ResourceGuard
from repro.engine.step import (
    InventionRegistry,
    RuleRuntime,
    StepDeltas,
    apply_deltas,
    apply_deltas_inplace,
    compute_deltas,
    evaluate_body,
    process_head,
)
from repro.engine.valuation import MatchContext, match_fact
from repro.testing.faults import FAULTS
from repro.analysis.driver import analyze_or_raise
from repro.language.analysis import (
    AnalyzedProgram,
    check_types,
)
from repro.language.ast import (
    ArithExpr,
    BuiltinLiteral,
    CollectionTerm,
    FunctionApp,
    Literal,
    Program,
    Rule,
)
from repro.storage.factset import FactSet
from repro.types.schema import Schema
from repro.values.oids import OidGenerator


class Semantics(enum.Enum):
    """Which rule semantics a module application requests (Section 1:
    databases are *parametric with respect to the semantics* of rules)."""

    INFLATIONARY = "inflationary"
    STRATIFIED = "stratified"
    NONINFLATIONARY = "noninflationary"


@dataclass
class EvalConfig:
    """Budgets and switches for fixpoint evaluation.

    ``incremental`` selects the O(|Δ|) kernel: deltas are applied to the
    working fact set in place (:func:`apply_deltas_inplace`), fixpoint
    detection is "the net change is empty", and indexes / active domains
    persist across iterations.  ``incremental=False`` keeps the
    reference copy-per-iteration implementation, which the property
    suite pins the kernel against.

    ``guard`` attaches a :class:`~repro.engine.guards.ResourceGuard`:
    wall-clock timeout, live-fact / invented-oid / fact-size budgets and
    cooperative cancellation, checked at every iteration boundary and at
    invention sites.  A breach raises
    :class:`~repro.errors.EvalBudgetExceeded` carrying the partial stats
    and a consistent partial-state snapshot (``docs/ROBUSTNESS.md``).

    ``plan`` runs the cost-based planner
    (:mod:`repro.engine.planner`) before each fixpoint scope: rule
    bodies are reordered from live index statistics and, for rules in
    the compilable fragment, specialized into closures
    (:mod:`repro.engine.compile`) that take over once the rule's
    observed work reaches ``compile_threshold`` body valuations
    (``0`` = immediately).  ``plan=False`` restores the dynamic greedy
    scheduler everywhere.
    """

    max_iterations: int = 10_000
    max_facts: int = 1_000_000
    max_inventions: int = 100_000
    seminaive: bool = True
    use_indexes: bool = True
    incremental: bool = True
    plan: bool = True
    compile_threshold: int = 64
    guard: ResourceGuard | None = None


@dataclass
class EvalStats:
    """Observability: what the last run did."""

    iterations: int = 0
    facts_derived: int = 0
    inventions: int = 0
    used_seminaive: bool = False
    strata: int = 1
    time_total: float = 0.0
    time_per_iteration: list[float] = field(default_factory=list)


class Engine:
    """Evaluates one analyzed program over extensional databases."""

    def __init__(
        self,
        schema: Schema,
        program: Program,
        config: EvalConfig | None = None,
        oidgen: OidGenerator | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self.config = config or EvalConfig()
        self.obs = instrumentation or NULL_INSTRUMENTATION
        # collect-all analysis: an error raises the legacy exception, but
        # with every error of the run attached as ``exc.diagnostics``
        self.analysis: AnalyzedProgram = analyze_or_raise(program, schema)
        self.schema = self.analysis.schema
        self.oidgen = oidgen or OidGenerator()
        self.runtimes = [
            RuleRuntime(
                index=i,
                rule=rule,
                safety=self.analysis.safety[i],
                varinfo=check_types(rule, self.schema),
            )
            for i, rule in enumerate(self.analysis.rules)
        ]
        self.stats = EvalStats()
        #: the plans chosen by the last run (one per fixpoint scope)
        self.plans: list = []
        #: oid-inventing rules in the whole program — the independence
        #: certificates degrade to singletons when there are two or
        #: more (fresh-oid numbering becomes order-sensitive)
        self._inventors = sum(
            1 for r in self.runtimes
            if r.rule.head is not None and r.safety.invents_oid
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        edb: FactSet,
        semantics: Semantics = Semantics.INFLATIONARY,
        tracer=None,
    ) -> FactSet:
        """Compute the instance of ``(E, R, S)`` under the given semantics.

        Passing a :class:`repro.engine.trace.Tracer` records derivation
        provenance (the tracer consumes the engine's event stream).  Any
        attached instrumentation — a tracer or an
        :class:`~repro.observability.Instrumentation` — forces the
        general (non-semi-naive) path so every rule firing is observed.
        """
        self.stats = EvalStats()
        self.plans = []
        obs = self.obs
        if tracer is not None:
            obs = obs.with_extra_sink(tracer)
        if obs.enabled:
            obs.run_started(semantics.value, len(self.runtimes))
        if self.config.guard is not None:
            # flush-on-breach: an EvalBudgetExceeded abort still leaves
            # every attached trace ending on a complete JSON line
            self.config.guard.arm(
                on_breach=obs.flush if obs.enabled else None
            )
        started = time.perf_counter()
        facts_out = 0
        try:
            result = self._run(edb, semantics, obs)
            facts_out = result.count()
            return result
        except EvalBudgetExceeded as exc:
            # kernels attach the consistent snapshot; the run boundary
            # guarantees the partial stats are always present
            raise exc.attach(stats=self.stats)
        finally:
            self.stats.time_total = time.perf_counter() - started
            if obs.enabled:
                obs.run_finished(
                    self.stats.iterations,
                    facts_out or self.stats.facts_derived,
                    self.stats.inventions,
                    self.stats.time_total,
                )

    def _run(
        self,
        edb: FactSet,
        semantics: Semantics,
        obs: Instrumentation,
    ) -> FactSet:
        self._reserve(edb)
        inventions = InventionRegistry(self.oidgen)
        rules = [r for r in self.runtimes if r.rule.head is not None]
        if semantics is Semantics.INFLATIONARY:
            facts = edb.copy()
            if obs.enabled:
                facts.index_stats = obs.index_stats
            self._attach_plans(rules, facts, obs, semantics)
            if not obs.enabled and self.config.seminaive and \
                    self._seminaive_applicable(rules):
                self.stats.used_seminaive = True
                return self._run_seminaive(facts, rules)
            return self._run_inflationary(facts, rules, inventions, obs)
        if semantics is Semantics.STRATIFIED:
            strata = stratify_runtimes(rules, self.analysis)
            self.stats.strata = len(strata)
            facts = edb.copy()
            if obs.enabled:
                facts.index_stats = obs.index_stats
            for level, stratum in enumerate(strata):
                # per-stratum planning: lower strata have materialized,
                # so the statistics are live at each boundary
                self._attach_plans(facts=facts, rules=stratum, obs=obs,
                                   semantics=semantics, stratum=level)
                if obs.enabled:
                    obs.stratum_started(level, len(stratum))
                    stratum_began = time.perf_counter()
                facts = self._run_inflationary(facts, stratum, inventions,
                                               obs)
                if obs.enabled:
                    obs.stratum_finished(
                        level, time.perf_counter() - stratum_began
                    )
            return facts
        if semantics is Semantics.NONINFLATIONARY:
            return self._run_noninflationary(edb, rules, inventions, obs)
        raise EvaluationError(f"unknown semantics {semantics!r}")

    def _attach_plans(
        self,
        rules: list[RuleRuntime],
        facts: FactSet,
        obs: Instrumentation,
        semantics: Semantics,
        stratum: int | None = None,
    ) -> None:
        """Plan one fixpoint scope and arm the runtimes.

        Compiled bodies are only built when they can legally run:
        uninstrumented (events must observe every valuation) and with
        indexes on (the closures bind index lookups directly).
        """
        cfg = self.config
        if not cfg.plan or not rules:
            return
        from repro.engine.compile import compile_rule
        from repro.engine.planner import build_plan

        metrics = obs.metrics if obs.enabled else None
        plan = build_plan(rules, facts, self.schema, metrics=metrics,
                          semantics=semantics.value, stratum=stratum,
                          program_inventors=self._inventors)
        self.plans.append(plan)
        compiling = cfg.use_indexes and not obs.enabled
        for runtime, rule_plan in zip(rules, plan.rules):
            runtime.plan = rule_plan
            runtime.work = 0
            runtime.hot = False
            runtime.threshold = cfg.compile_threshold
            runtime.compiled = None
            if compiling and rule_plan.order is not None:
                runtime.compiled = compile_rule(runtime, rule_plan,
                                                self.schema)
                if runtime.compiled is not None and (
                    cfg.compile_threshold <= 0
                    # cost-based pre-arming: the plan already predicts
                    # the body's valuation count, so a rule expected to
                    # cross the threshold starts hot instead of paying
                    # generic rounds first
                    or rule_plan.cost >= cfg.compile_threshold
                ):
                    runtime.hot = True
        if obs.enabled:
            obs.plan_chosen(plan)
        else:
            # certificate-backed reordering: within each independent
            # group, cheapest-plan-first so low-cost rules saturate
            # their deltas early.  The groups are provably
            # order-insensitive, so results stay bit-identical (pinned
            # by the planned≡reference property suite).  Instrumented
            # runs keep source order — event streams promise it.
            self._reorder_by_certificates(rules, plan)

    @staticmethod
    def _reorder_by_certificates(rules: list[RuleRuntime], plan) -> None:
        """Reorder ``rules`` in place, cheapest plan first *within* each
        independence certificate; the slot positions of every group are
        preserved, so inter-group relative order never changes."""
        by_index = {r.index: pos for pos, r in enumerate(rules)}
        arranged = list(rules)
        for group in plan.independent_groups:
            members = [i for i in group if i in by_index]
            if len(members) < 2:
                continue
            slots = sorted(by_index[i] for i in members)
            ordered = sorted(
                (rules[by_index[i]] for i in members),
                key=lambda r: (
                    r.plan.cost if r.plan is not None else 0.0,
                    r.index,
                ),
            )
            for slot, runtime in zip(slots, ordered):
                arranged[slot] = runtime
        rules[:] = arranged

    def explain_plan(
        self, edb: FactSet, semantics: Semantics = Semantics.INFLATIONARY
    ) -> list:
        """The plans ``repro plan`` prints: every scope planned against
        the extensional database (at run time, stratified scopes re-plan
        on the live statistics of their boundary)."""
        from repro.engine.planner import build_plan

        rules = [r for r in self.runtimes if r.rule.head is not None]
        if semantics is Semantics.STRATIFIED:
            strata = stratify_runtimes(rules, self.analysis)
            return [
                build_plan(stratum, edb, self.schema,
                           semantics=semantics.value, stratum=level,
                           program_inventors=self._inventors)
                for level, stratum in enumerate(strata)
            ]
        return [build_plan(rules, edb, self.schema,
                           semantics=semantics.value,
                           program_inventors=self._inventors)]

    @contextmanager
    def _iteration(self, obs: Instrumentation):
        """The single iteration scope: every kernel wraps one iteration
        in this, so ``stats.time_per_iteration`` has one consistent
        timing boundary (and the observability layer one emit point)."""
        number = self.stats.iterations + 1
        self.stats.iterations = number
        if FAULTS.enabled:
            FAULTS.fire("engine.iteration", guard=self.config.guard)
        if obs.enabled:
            obs.iteration_started(number)
        started = time.perf_counter()
        try:
            yield number
        finally:
            elapsed = time.perf_counter() - started
            self.stats.time_per_iteration.append(elapsed)
            if obs.enabled:
                obs.iteration_finished(number, elapsed)

    def _guard_boundary(
        self,
        guard: ResourceGuard | None,
        facts: FactSet,
        live: int,
        inventions: int,
        obs: Instrumentation = NULL_INSTRUMENTATION,
    ) -> None:
        """The per-kernel iteration-boundary guard check.  ``facts`` is
        the state of the last completed iteration, so the snapshot a
        breach carries is always consistent.  The same boundary is the
        heartbeat cadence point: live fact counts are in hand here, so
        the beacon is free when the interval has not elapsed."""
        if obs.enabled:
            obs.maybe_heartbeat(live, inventions)
        if guard is None:
            return
        try:
            guard.check_iteration(live, inventions)
        except EvalBudgetExceeded as exc:
            raise exc.attach(stats=self.stats, snapshot=facts)

    def _reserve(self, edb: FactSet) -> None:
        from repro.values.oids import Oid

        highest = edb.max_oid_number()
        if highest:
            self.oidgen.reserve_above(Oid(highest))

    # ------------------------------------------------------------------
    # inflationary (general path)
    # ------------------------------------------------------------------
    def _run_inflationary(
        self,
        facts: FactSet,
        rules: list[RuleRuntime],
        inventions: InventionRegistry,
        obs: Instrumentation = NULL_INSTRUMENTATION,
    ) -> FactSet:
        if self.config.incremental:
            return self._run_inflationary_incremental(
                facts, rules, inventions, obs
            )
        return self._run_inflationary_reference(
            facts, rules, inventions, obs
        )

    def _run_inflationary_incremental(
        self,
        facts: FactSet,
        rules: list[RuleRuntime],
        inventions: InventionRegistry,
        obs: Instrumentation = NULL_INSTRUMENTATION,
    ) -> FactSet:
        """O(|Δ|) kernel: one working fact set mutated in place.

        The match context, hash indexes and active-domain caches persist
        across iterations; only the domains of predicates named by the
        net change are invalidated.  Fixpoint is detected by an empty
        net change and the fact count is maintained by a running
        counter, so no iteration copies, compares or recounts the full
        fact set.
        """
        cfg = self.config
        guard = cfg.guard
        step_obs = obs if obs.enabled else None
        metrics = obs.metrics if obs.enabled else None
        ctx = MatchContext(facts, self.schema, cfg.use_indexes,
                           metrics=metrics)
        domains = ActiveDomains(facts, self.schema)
        live = facts.count()
        for _ in range(cfg.max_iterations):
            self._guard_boundary(guard, facts, live, inventions.count,
                                 obs)
            try:
                with self._iteration(obs):
                    deltas = compute_deltas(rules, ctx, inventions,
                                            obs=step_obs, domains=domains,
                                            guard=guard)
                    self.stats.inventions += deltas.inventions
                    if inventions.count > cfg.max_inventions:
                        raise NonTerminationError(
                            f"oid invention budget exceeded"
                            f" ({inventions.count} oids)",
                            self.stats.iterations,
                            stats=self.stats,
                        )
                    net = apply_deltas_inplace(facts, deltas)
            except EvalBudgetExceeded as exc:
                # compute_deltas never mutates ``facts``, so the working
                # set still is the last iteration boundary's state
                raise exc.attach(stats=self.stats, snapshot=facts)
            if net.is_empty:
                return facts
            live += net.count_drift
            self.stats.facts_derived = live
            domains.invalidate(net.predicates())
            if live > cfg.max_facts:
                raise NonTerminationError(
                    f"fact budget exceeded ({live} facts)",
                    self.stats.iterations,
                    stats=self.stats,
                )
        raise NonTerminationError(
            f"no fixpoint after {cfg.max_iterations} iterations",
            self.stats.iterations,
            stats=self.stats,
        )

    def _run_inflationary_reference(
        self,
        facts: FactSet,
        rules: list[RuleRuntime],
        inventions: InventionRegistry,
        obs: Instrumentation = NULL_INSTRUMENTATION,
    ) -> FactSet:
        """Copying reference implementation (``incremental=False``).

        Kept verbatim as the executable specification the incremental
        kernel is property-tested against: every iteration builds a new
        fact set and compares whole states for fixpoint detection.
        """
        cfg = self.config
        guard = cfg.guard
        step_obs = obs if obs.enabled else None
        metrics = obs.metrics if obs.enabled else None
        for _ in range(cfg.max_iterations):
            self._guard_boundary(guard, facts, facts.count(),
                                 inventions.count, obs)
            try:
                with self._iteration(obs):
                    ctx = MatchContext(facts, self.schema,
                                       self.config.use_indexes,
                                       metrics=metrics)
                    deltas = compute_deltas(rules, ctx, inventions,
                                            obs=step_obs, guard=guard)
                    self.stats.inventions += deltas.inventions
                    if inventions.count > cfg.max_inventions:
                        raise NonTerminationError(
                            f"oid invention budget exceeded"
                            f" ({inventions.count} oids)",
                            self.stats.iterations,
                            stats=self.stats,
                        )
                    new_facts = apply_deltas(facts, deltas)
            except EvalBudgetExceeded as exc:
                raise exc.attach(stats=self.stats, snapshot=facts)
            if new_facts == facts:
                return facts
            facts = new_facts
            self.stats.facts_derived = facts.count()
            if facts.count() > cfg.max_facts:
                raise NonTerminationError(
                    f"fact budget exceeded ({facts.count()} facts)",
                    self.stats.iterations,
                    stats=self.stats,
                )
        raise NonTerminationError(
            f"no fixpoint after {cfg.max_iterations} iterations",
            self.stats.iterations,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # semi-naive fast path (positive fragment)
    # ------------------------------------------------------------------
    def _seminaive_applicable(self, rules: list[RuleRuntime]) -> bool:
        for runtime in rules:
            rule = runtime.rule
            head = rule.head
            if not isinstance(head, Literal) or head.negated:
                return False
            if self.schema.is_class(head.pred):
                return False
            if runtime.safety.invents_oid:
                return False
            for blit in rule.body:
                if blit.negated:
                    return False
                if isinstance(blit, BuiltinLiteral):
                    if any(
                        _reads_function(t) for t in blit.args
                    ):
                        return False
        return True

    def _run_seminaive(
        self, facts: FactSet, rules: list[RuleRuntime]
    ) -> FactSet:
        cfg = self.config
        guard = cfg.guard
        incremental = cfg.incremental
        inventions = InventionRegistry(self.oidgen)  # unused but uniform
        obs = NULL_INSTRUMENTATION  # semi-naive only runs uninstrumented
        if (
            cfg.plan and cfg.use_indexes and rules
            and all(r.compiled is not None and r.hot for r in rules)
        ):
            # every rule pre-armed hot: the whole fixpoint, initial
            # round included, runs on the compiled driver
            return self._run_seminaive_compiled(facts, rules, None,
                                                facts.count())
        # initial round: fact rules and rules over the EDB
        self._guard_boundary(guard, facts, facts.count(), 0)
        with self._iteration(obs):
            ctx = MatchContext(facts, self.schema, cfg.use_indexes)
            first = compute_deltas(rules, ctx, inventions, guard=guard)
            if incremental:
                # one working fact set, mutated in place; the net change
                # is exactly the facts the EDB did not already contain,
                # so round 2 never re-joins the whole EDB.
                net = apply_deltas_inplace(facts, first)
                delta = FactSet.from_facts(net.added)
            else:
                edb = facts
                facts = apply_deltas(facts, first)
                # seed with the *net-new* facts only; ``first.plus`` may
                # repeat EDB facts, which round 2 would pointlessly
                # re-join.
                delta = first.plus.minus(edb)
                ctx = MatchContext(facts, self.schema, cfg.use_indexes)
            live = facts.count()
            domains = ActiveDomains(facts, self.schema)
            self.stats.facts_derived = live
        compilable = bool(
            cfg.plan and cfg.use_indexes and rules
            and all(r.compiled is not None for r in rules)
        )
        while delta.count():
            if compilable and all(r.hot for r in rules):
                # every rule crossed the work threshold: hand the rest
                # of the fixpoint to the compiled driver
                return self._run_seminaive_compiled(facts, rules, delta,
                                                    live)
            self._guard_boundary(guard, facts, live, 0)
            with self._iteration(obs):
                if self.stats.iterations > cfg.max_iterations:
                    raise NonTerminationError(
                        f"no fixpoint after {cfg.max_iterations}"
                        f" iterations",
                        self.stats.iterations,
                        stats=self.stats,
                    )
                if not incremental:
                    ctx = MatchContext(facts, self.schema,
                                       cfg.use_indexes)
                    domains = ActiveDomains(facts, self.schema)
                round_delta = StepDeltas()
                for runtime in rules:
                    body = list(runtime.rule.body)
                    rule_plan = runtime.plan
                    positions = [
                        i for i, l in enumerate(body)
                        if isinstance(l, Literal) and delta.count(l.pred)
                    ]
                    valuations = 0
                    for pos in positions:
                        literal = body[pos]
                        rest_order = (
                            rule_plan.delta_orders.get(pos)
                            if rule_plan is not None else None
                        )
                        if rest_order is not None:
                            rest = tuple(body[i] for i in rest_order)
                            ordered = True
                        else:
                            rest = tuple(body[:pos] + body[pos + 1:])
                            ordered = False
                        for fact in delta.facts_of(literal.pred):
                            seed = match_fact(literal.args, fact, {}, ctx)
                            if seed is None:
                                continue
                            for bindings in evaluate_body(
                                runtime, ctx, domains, seed=seed,
                                body=rest, ordered=ordered
                            ):
                                valuations += 1
                                process_head(
                                    runtime, bindings, ctx, round_delta,
                                    inventions, guard=guard,
                                )
                    if runtime.compiled is not None:
                        runtime.note_work(valuations)
                if incremental:
                    # in-place union: `add` reports exactly the fresh
                    # facts
                    fresh = FactSet.from_facts(
                        f for f in round_delta.plus.facts()
                        if facts.add(f)
                    )
                    live += fresh.count()
                    domains.invalidate(fresh.predicates())
                else:
                    fresh = round_delta.plus.minus(facts)
                    facts = facts.compose(fresh)
                    live = facts.count()
                delta = fresh
                self.stats.facts_derived = live
            if live > cfg.max_facts:
                raise NonTerminationError(
                    f"fact budget exceeded ({live} facts)",
                    self.stats.iterations,
                    stats=self.stats,
                )
        return facts

    def _run_seminaive_compiled(
        self,
        facts: FactSet,
        rules: list[RuleRuntime],
        delta: FactSet | None,
        live: int,
    ) -> FactSet:
        """Semi-naive rounds driven entirely by compiled rule bodies.

        Plain per-round lists replace the per-round ``StepDeltas`` /
        ``FactSet`` churn of the generic loop: each delta fact is pushed
        through every seed chain registered for its predicate, emitted
        facts are deduplicated against the live state and the current
        round, and the survivors become the next round's delta.  Same
        fixpoint, same iteration count, same budget checks.

        ``delta=None`` means the initial round has not run yet: the
        full body chains evaluate once over the EDB and their net-new
        facts seed the delta rounds.
        """
        cfg = self.config
        guard = cfg.guard
        obs = NULL_INSTRUMENTATION
        ctx = MatchContext(facts, self.schema, True)
        if delta is None:
            self._guard_boundary(guard, facts, live, 0)
            with self._iteration(obs):
                fresh: list = []
                seen: dict[str, set] = {}
                for runtime in rules:
                    compiled = runtime.compiled
                    compiled.run_full(ctx, compiled.make_round_emit(
                        facts, fresh, seen, guard
                    ))
                for fact in fresh:
                    facts.add(fact)
                live += len(fresh)
                self.stats.facts_derived = live
                pending = fresh
            if live > cfg.max_facts:
                raise NonTerminationError(
                    f"fact budget exceeded ({live} facts)",
                    self.stats.iterations,
                    stats=self.stats,
                )
        else:
            pending = list(delta.facts())
        while pending:
            self._guard_boundary(guard, facts, live, 0)
            with self._iteration(obs):
                if self.stats.iterations > cfg.max_iterations:
                    raise NonTerminationError(
                        f"no fixpoint after {cfg.max_iterations}"
                        f" iterations",
                        self.stats.iterations,
                        stats=self.stats,
                    )
                fresh: list = []
                seen: dict[str, set] = {}
                dispatch: dict[str, list] = {}
                for runtime in rules:
                    compiled = runtime.compiled
                    emit = compiled.make_round_emit(facts, fresh, seen,
                                                    guard)
                    for pos, pred in compiled.seed_specs:
                        dispatch.setdefault(pred, []).append(
                            (compiled.seed_chains[pos], compiled.regs,
                             emit)
                        )
                for fact in pending:
                    handlers = dispatch.get(fact.pred)
                    if handlers is None:
                        continue
                    for seed_chain, regs, emit in handlers:
                        seed_chain(fact, regs, ctx, emit)
                for fact in fresh:
                    facts.add(fact)
                live += len(fresh)
                self.stats.facts_derived = live
                pending = fresh
            if live > cfg.max_facts:
                raise NonTerminationError(
                    f"fact budget exceeded ({live} facts)",
                    self.stats.iterations,
                    stats=self.stats,
                )
        return facts

    # ------------------------------------------------------------------
    # non-inflationary
    # ------------------------------------------------------------------
    def _run_noninflationary(
        self,
        edb: FactSet,
        rules: list[RuleRuntime],
        inventions: InventionRegistry,
        obs: Instrumentation = NULL_INSTRUMENTATION,
    ) -> FactSet:
        if self.analysis.has_invention:
            raise EvaluationError(
                "non-inflationary semantics does not support oid invention"
            )
        cfg = self.config
        guard = cfg.guard
        step_obs = obs if obs.enabled else None
        metrics = obs.metrics if obs.enabled else None
        facts = edb.copy()
        if obs.enabled:
            facts.index_stats = obs.index_stats
        self._attach_plans(rules, facts, obs, Semantics.NONINFLATIONARY)
        seen: list[FactSet] = [facts.copy()]
        for _ in range(cfg.max_iterations):
            self._guard_boundary(guard, facts, facts.count(),
                                 inventions.count, obs)
            try:
                with self._iteration(obs):
                    ctx = MatchContext(facts, self.schema,
                                       self.config.use_indexes,
                                       metrics=metrics)
                    deltas = compute_deltas(rules, ctx, inventions,
                                            skip_satisfied=False,
                                            obs=step_obs, guard=guard)
                    new_facts = edb.copy().compose(deltas.plus).minus(
                        deltas.minus
                    )
            except EvalBudgetExceeded as exc:
                raise exc.attach(stats=self.stats, snapshot=facts)
            if new_facts == facts:
                return facts
            for previous in seen:
                if previous == new_facts:
                    raise NonTerminationError(
                        "non-inflationary evaluation oscillates between"
                        " states without reaching a fixpoint",
                        self.stats.iterations,
                        stats=self.stats,
                    )
            seen.append(new_facts.copy())
            facts = new_facts
            if facts.count() > cfg.max_facts:
                raise NonTerminationError(
                    f"fact budget exceeded ({facts.count()} facts)",
                    self.stats.iterations,
                    stats=self.stats,
                )
        raise NonTerminationError(
            f"no fixpoint after {cfg.max_iterations} iterations",
            self.stats.iterations,
            stats=self.stats,
        )


def _reads_function(term) -> bool:
    if isinstance(term, FunctionApp):
        return True
    if isinstance(term, ArithExpr):
        return _reads_function(term.left) or _reads_function(term.right)
    if isinstance(term, CollectionTerm):
        return any(_reads_function(e) for e in term.elements)
    return False


def stratify_runtimes(
    rules: list[RuleRuntime], analysis: AnalyzedProgram
) -> list[list[RuleRuntime]]:
    """Group rule runtimes according to the program's strata."""
    strata_rules = analysis.strata()
    by_rule: dict[int, int] = {}
    for level, stratum in enumerate(strata_rules):
        for rule in stratum:
            for runtime_rule in rules:
                if runtime_rule.rule == rule and \
                        runtime_rule.index not in by_rule:
                    by_rule[runtime_rule.index] = level
                    break
    grouped: dict[int, list[RuleRuntime]] = {}
    for runtime in rules:
        grouped.setdefault(by_rule.get(runtime.index, 0), []).append(runtime)
    return [grouped[k] for k in sorted(grouped)]
