"""One evaluation step: body valuations and Δ⁺ / Δ⁻ (Appendix B, Def. 7-8).

For every rule, the *valuation domain* is enumerated — extensions of the
empty valuation satisfying the body, minus those whose head is already
satisfiable (so a rule never re-derives, and an inventing rule never
re-invents for the same substitution).  Each surviving valuation
contributes a ground fact to Δ⁺ (positive head) or Δ⁻ (negated head,
i.e. deletion).

Oid invention (Def. 8b) is memoized per (rule, body substitution) in an
:class:`InventionRegistry` that persists across steps, ensuring the
deterministic, determinate-up-to-renaming semantics.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.errors import EvaluationError, SafetyError
from repro.engine.activedomain import ActiveDomains
from repro.engine.valuation import (
    SELF_LABEL,
    Bindings,
    MatchContext,
    Unbound,
    as_oid,
    match_literal,
    resolve_term,
    values_unify,
)
from repro.language.analysis import SafetyReport, VarInfo
from repro.language.ast import (
    BuiltinLiteral,
    Constant,
    Literal,
    Rule,
    Term,
    Var,
)
from repro.language.builtins import RESULT_LAST, get_builtin
from repro.storage.factset import Fact, FactSet
from repro.types.descriptors import NamedType
from repro.values.complex import TupleValue, Value
from repro.values.oids import Oid, OidGenerator


@dataclass
class RuleRuntime:
    """A rule with its precomputed static analysis results.

    The planner attaches per-run evaluation state: ``plan`` (a
    :class:`~repro.engine.planner.RulePlan` whose literal order the body
    evaluator follows), ``compiled`` (a
    :class:`~repro.engine.compile.CompiledRule`, when the rule is in
    the compilable fragment) and the work accounting that decides when
    the compiled body takes over (``EvalConfig.compile_threshold``).
    """

    index: int
    rule: Rule
    safety: SafetyReport
    varinfo: dict[Var, VarInfo]
    plan: object | None = None
    compiled: object | None = None
    hot: bool = False
    threshold: int = 0
    work: int = 0

    def note_work(self, valuations: int) -> None:
        """Fire-count feedback: once a rule has produced enough body
        valuations, its compiled form (if any) becomes active."""
        self.work += valuations
        if not self.hot and self.compiled is not None and \
                self.work >= self.threshold:
            self.hot = True


class InventionRegistry:
    """Persistent memo of invented oids (Def. 8b uniqueness condition)."""

    def __init__(self, oidgen: OidGenerator):
        self._oidgen = oidgen
        self._memo: dict[tuple, Oid] = {}

    def oid_for(self, rule_index: int, bindings: Bindings) -> tuple[Oid, bool]:
        """The invented oid for this (rule, substitution); (oid, fresh?)."""
        key = (
            rule_index,
            tuple(sorted((v.name, b) for v, b in bindings.items())),
        )
        existing = self._memo.get(key)
        if existing is not None:
            return existing, False
        oid = self._oidgen.fresh()
        self._memo[key] = oid
        return oid, True

    @property
    def count(self) -> int:
        return len(self._memo)


@dataclass
class StepDeltas:
    """The Δ⁺ / Δ⁻ produced by one application of every rule."""

    plus: FactSet = field(default_factory=FactSet)
    minus: FactSet = field(default_factory=FactSet)
    inventions: int = 0

    @property
    def is_empty(self) -> bool:
        return self.plus.count() == 0 and self.minus.count() == 0


@dataclass
class NetChange:
    """The *net* effect of one in-place delta application.

    ``added`` and ``removed`` are exact: a fact inserted by Δ⁺ and
    deleted again by Δ⁻ in the same step appears in neither, and a class
    fact whose o-value is overwritten contributes the old fact to
    ``removed`` and the new one to ``added``.  ``is_empty`` is therefore
    equivalent to ``new state == old state`` — the fixpoint test — and
    ``len(added) - len(removed)`` is the fact-count drift, so neither
    needs an O(|F|) comparison or recount.
    """

    added: list[Fact] = field(default_factory=list)
    removed: list[Fact] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    @property
    def count_drift(self) -> int:
        return len(self.added) - len(self.removed)

    def predicates(self) -> set[str]:
        return {f.pred for f in self.added} | {
            f.pred for f in self.removed
        }


# ---------------------------------------------------------------------------
# body evaluation
# ---------------------------------------------------------------------------
def evaluate_body(
    runtime: RuleRuntime,
    ctx: MatchContext,
    domains: ActiveDomains,
    seed: Bindings | None = None,
    body: tuple | None = None,
    ordered: bool = False,
):
    """Enumerate valuations satisfying the rule body.

    When the runtime carries a plan (or ``ordered`` says the caller
    pre-ordered ``body``), literals run in the planned order.  Otherwise
    they are scheduled greedily: at each point the first *ready* pending
    literal runs — positive ordinary literals are always ready,
    built-ins once their inputs are resolvable, negated literals once all
    their variables are bound or enumerable from the active domain.
    """
    if body is None:
        plan = runtime.plan
        if plan is not None and plan.order is not None:
            rule_body = runtime.rule.body
            pending = [rule_body[i] for i in plan.order]
            return _eval_ordered(pending, 0, dict(seed or {}), runtime,
                                 ctx, domains)
        pending = list(runtime.rule.body)
    else:
        pending = list(body)
        if ordered:
            return _eval_ordered(pending, 0, dict(seed or {}), runtime,
                                 ctx, domains)
    return _eval_pending(pending, dict(seed or {}), runtime, ctx, domains)


def _eval_ordered(
    pending: list,
    idx: int,
    bindings: Bindings,
    runtime: RuleRuntime,
    ctx: MatchContext,
    domains: ActiveDomains,
):
    """Planned-order evaluation: no per-step readiness scan — the
    planner already proved each literal schedulable at its position."""
    if idx == len(pending):
        yield bindings
        return
    literal = pending[idx]
    idx += 1
    if isinstance(literal, Literal):
        if literal.negated:
            for extended in _solve_negative(
                literal, bindings, runtime, ctx, domains
            ):
                yield from _eval_ordered(pending, idx, extended, runtime,
                                         ctx, domains)
        else:
            for extended in match_literal(literal, bindings, ctx):
                yield from _eval_ordered(pending, idx, extended, runtime,
                                         ctx, domains)
    else:
        for extended in _solve_builtin(literal, bindings, ctx):
            yield from _eval_ordered(pending, idx, extended, runtime,
                                     ctx, domains)


def _eval_pending(
    pending: list,
    bindings: Bindings,
    runtime: RuleRuntime,
    ctx: MatchContext,
    domains: ActiveDomains,
):
    if not pending:
        yield bindings
        return
    idx = _pick_ready(pending, bindings, runtime, ctx)
    literal = pending[idx]
    rest = pending[:idx] + pending[idx + 1:]
    if isinstance(literal, Literal):
        if literal.negated:
            for extended in _solve_negative(
                literal, bindings, runtime, ctx, domains
            ):
                yield from _eval_pending(rest, extended, runtime, ctx,
                                         domains)
        else:
            for extended in match_literal(literal, bindings, ctx):
                yield from _eval_pending(rest, extended, runtime, ctx,
                                         domains)
    else:
        for extended in _solve_builtin(literal, bindings, ctx):
            yield from _eval_pending(rest, extended, runtime, ctx, domains)


def _pick_ready(
    pending: list, bindings: Bindings, runtime: RuleRuntime, ctx: MatchContext
) -> int:
    """Greedy scheduling: negated literals and built-ins run as soon as
    they are ready (they only filter or bind cheaply); among positive
    ordinary literals, the most *bound* one runs first so the hash
    indexes get a key to look up."""
    best_positive = -1
    best_score = -1
    for i, literal in enumerate(pending):
        if isinstance(literal, Literal):
            if not literal.negated:
                score = _boundness(literal, bindings)
                if score > best_score:
                    best_positive, best_score = i, score
                continue
            if _negative_ready(literal, bindings, runtime):
                return i
        elif _builtin_ready(literal, bindings, ctx):
            return i
    if best_positive >= 0:
        return best_positive
    raise EvaluationError(
        f"no literal of {pending!r} can make progress with bindings"
        f" {sorted(v.name for v in bindings)}; the rule is unsafe"
    )


def _boundness(literal: Literal, bindings: Bindings) -> int:
    """How selective a positive literal is under the current bindings:
    constants and bound variables at labeled/self positions count."""
    score = 0
    args = literal.args
    if args.self_term is not None:
        if not isinstance(args.self_term, Var) or \
                args.self_term in bindings:
            score += 4  # a bound oid is a direct lookup
    for _, term in args.labeled:
        if isinstance(term, Constant):
            score += 2
        elif isinstance(term, Var) and term in bindings:
            score += 2
        elif not isinstance(term, Var) and all(
            v in bindings for v in term.variables()
        ):
            score += 1
    if args.tuple_var is not None and args.tuple_var in bindings:
        score += 3
    return score


def _negative_ready(
    literal: Literal, bindings: Bindings, runtime: RuleRuntime
) -> bool:
    ad = set(runtime.safety.active_domain_vars)
    return all(
        v in bindings or v in ad for v in literal.variables()
    )


def _builtin_ready(
    blit: BuiltinLiteral, bindings: Bindings, ctx: MatchContext
) -> bool:
    def resolvable(t: Term) -> bool:
        try:
            resolve_term(t, bindings, ctx)
            return True
        except Unbound:
            return False
        except EvaluationError:
            return False

    def var_or_resolvable(t: Term) -> bool:
        return isinstance(t, Var) or resolvable(t)

    name = blit.name
    if blit.negated:
        return all(resolvable(t) for t in blit.args)
    if name == "=" and len(blit.args) == 2:
        left, right = blit.args
        return (resolvable(left) and var_or_resolvable(right)) or (
            resolvable(right) and var_or_resolvable(left)
        )
    if name == "member" and len(blit.args) == 2:
        element, coll = blit.args
        return resolvable(coll) and var_or_resolvable(element)
    if name in RESULT_LAST and blit.args:
        *inputs, result = blit.args
        return all(resolvable(t) for t in inputs) and var_or_resolvable(
            result
        )
    return all(resolvable(t) for t in blit.args)


def _solve_builtin(
    blit: BuiltinLiteral, bindings: Bindings, ctx: MatchContext
):
    builtin = get_builtin(blit.name)
    resolved = []
    for term in blit.args:
        try:
            resolved.append(resolve_term(term, bindings, ctx))
        except Unbound:
            if isinstance(term, Var):
                resolved.append(term)
            else:
                raise
    if blit.negated:
        if any(isinstance(r, Var) for r in resolved):
            raise EvaluationError(
                f"negated builtin {blit!r} applied to unbound variable"
            )
        if not any(True for _ in builtin.solve(resolved)):
            yield bindings
        return
    for extra in builtin.solve(resolved):
        out = dict(bindings)
        out.update(extra)
        yield out


def _solve_negative(
    literal: Literal,
    bindings: Bindings,
    runtime: RuleRuntime,
    ctx: MatchContext,
    domains: ActiveDomains,
):
    """Valuations surviving a negated ordinary literal.

    Unbound variables (necessarily flagged as active-domain variables by
    the safety analysis) are enumerated over the active domain of their
    inferred type; each full valuation survives iff no fact matches.
    """
    unbound = [
        v for v in dict.fromkeys(literal.variables()) if v not in bindings
    ]
    if not unbound:
        positive = Literal(literal.pred, literal.args, negated=False)
        if next(match_literal(positive, bindings, ctx), None) is None:
            yield bindings
        return
    value_spaces = []
    for var in unbound:
        info = runtime.varinfo.get(var)
        if info is None or not info.types:
            raise EvaluationError(
                f"cannot determine the type of active-domain variable"
                f" {var!r} in {literal!r}"
            )
        value_spaces.append(list(domains.enumerate(info.types[0])))
    positive = Literal(literal.pred, literal.args, negated=False)
    for combo in itertools.product(*value_spaces):
        candidate = dict(bindings)
        candidate.update(zip(unbound, combo))
        if next(match_literal(positive, candidate, ctx), None) is None:
            yield candidate


# ---------------------------------------------------------------------------
# body probing (why-not analysis)
# ---------------------------------------------------------------------------
@dataclass
class BodyProbe:
    """The best near-miss found when probing a rule body.

    ``satisfiable`` means a full valuation of the body exists under the
    seed; otherwise ``failed`` is the first literal of the *deepest*
    partial valuation reached that admitted no extension, ``matched``
    counts the literals satisfied on that path, and ``bindings`` is the
    live valuation at the point of failure.
    """

    matched: int
    total: int
    failed: object | None
    bindings: Bindings
    satisfiable: bool
    exhausted: bool = False  # the search budget ran out first

    @property
    def failed_repr(self) -> str | None:
        return repr(self.failed) if self.failed is not None else None


def probe_body(
    runtime: RuleRuntime,
    ctx: MatchContext,
    domains: ActiveDomains,
    seed: Bindings | None = None,
    budget: int = 10_000,
) -> BodyProbe:
    """Replay a rule body and report how far it gets (Def. 7, replayed).

    The same greedy literal scheduling as :func:`evaluate_body`, but
    instead of enumerating conclusions it tracks the deepest point any
    branch reached before failing — the *best near-miss valuation* that
    why-not provenance reports.  The DFS is bounded by ``budget``
    visited states so pathological joins cannot hang a debugging
    command.
    """
    pending = list(runtime.rule.body)
    total = len(pending)
    seed = dict(seed or {})
    best = {"matched": -1, "failed": None, "bindings": seed}
    state = {"budget": budget}

    def record(depth: int, literal, bindings: Bindings) -> None:
        if depth > best["matched"]:
            best["matched"] = depth
            best["failed"] = literal
            best["bindings"] = bindings

    def walk(pending: list, bindings: Bindings, depth: int) -> bool:
        if not pending:
            best["bindings"] = bindings
            return True
        if state["budget"] <= 0:
            return False
        state["budget"] -= 1
        try:
            idx = _pick_ready(pending, bindings, runtime, ctx)
        except EvaluationError:
            record(depth, pending[0], bindings)
            return False
        literal = pending[idx]
        rest = pending[:idx] + pending[idx + 1:]
        extended_any = False
        for extended in _probe_extensions(literal, bindings, runtime,
                                          ctx, domains):
            extended_any = True
            if walk(rest, extended, depth + 1):
                return True
            if state["budget"] <= 0:
                break
        if not extended_any:
            record(depth, literal, bindings)
        return False

    satisfiable = walk(pending, seed, 0)
    if satisfiable:
        return BodyProbe(total, total, None, best["bindings"], True)
    matched = max(best["matched"], 0)
    return BodyProbe(matched, total, best["failed"], best["bindings"],
                     False, exhausted=state["budget"] <= 0)


def _probe_extensions(
    literal,
    bindings: Bindings,
    runtime: RuleRuntime,
    ctx: MatchContext,
    domains: ActiveDomains,
):
    """Extensions of one body literal, with every evaluation failure
    (unbound builtin input, untypeable negation variable) folded into
    "no extension" so the probe reports it as the failing literal."""
    from repro.errors import LogresError

    try:
        if isinstance(literal, Literal):
            if literal.negated:
                yield from _solve_negative(literal, bindings, runtime,
                                           ctx, domains)
            else:
                yield from match_literal(literal, bindings, ctx)
        else:
            yield from _solve_builtin(literal, bindings, ctx)
    except (LogresError, Unbound):
        return


# ---------------------------------------------------------------------------
# head processing
# ---------------------------------------------------------------------------
def process_head(
    runtime: RuleRuntime,
    bindings: Bindings,
    ctx: MatchContext,
    deltas: StepDeltas,
    inventions: InventionRegistry,
    skip_satisfied: bool = True,
    obs=None,
    guard=None,
) -> list[Fact]:
    """Turn one body valuation into a Δ⁺ or Δ⁻ contribution.

    ``skip_satisfied`` applies the valuation-domain condition of Def. 7
    (drop valuations whose head is already satisfiable); the
    non-inflationary semantics disables it, since each step rebuilds the
    state from scratch.  ``obs`` (an
    :class:`repro.observability.Instrumentation`) receives one
    rule-fired notification per valuation — that event stream is what
    :class:`repro.engine.trace.Tracer` records provenance from.
    Returns the facts this valuation contributed (empty for a duplicate).
    """
    head = runtime.rule.head
    assert isinstance(head, Literal)
    if ctx.schema.is_class(head.pred):
        if head.negated:
            contributed = _delete_object(head, bindings, ctx, deltas)
        else:
            contributed = _derive_object(
                runtime, head, bindings, ctx, deltas, inventions,
                skip_satisfied, obs, guard,
            )
    else:
        if head.negated:
            contributed = _delete_tuples(head, bindings, ctx, deltas)
        else:
            contributed = _derive_tuple(head, bindings, ctx, deltas,
                                        skip_satisfied, guard)
    if obs is not None:
        obs.rule_fired(runtime, contributed, bindings, head.negated)
    return contributed


def _head_attributes(
    head: Literal, bindings: Bindings, ctx: MatchContext
) -> TupleValue:
    """The attribute tuple described by the head's labeled args and tuple
    variable, coerced field-wise against the declared types."""
    eff = ctx.schema.effective_type(head.pred)
    out: dict[str, Value] = {}
    if head.args.tuple_var is not None:
        try:
            whole = resolve_term(head.args.tuple_var, bindings, ctx)
        except Unbound:
            whole = None
        if whole is not None:
            if not isinstance(whole, TupleValue):
                raise EvaluationError(
                    f"tuple variable {head.args.tuple_var!r} bound to"
                    f" non-tuple {whole!r}"
                )
            for label in eff.labels:
                if label in whole:
                    out[label] = whole[label]
    for label, term in head.args.labeled:
        value = resolve_term(term, bindings, ctx)
        out[label] = _coerce_field(value, head.pred, label, ctx)
    return TupleValue(out)


def _coerce_field(
    value: Value, pred: str, label: str, ctx: MatchContext
) -> Value:
    declared = ctx.schema.field_type(pred, label)
    if isinstance(declared, NamedType) and ctx.schema.is_class(
        declared.name
    ):
        oid = as_oid(value)
        if oid is None:
            raise EvaluationError(
                f"field {label!r} of {pred!r} references class"
                f" {declared.name!r} but got non-object value {value!r}"
            )
        return oid
    return value


def _head_satisfied(
    head: Literal, attrs: TupleValue, oid: Oid | None, ctx: MatchContext
) -> bool:
    """Is there an extension of the valuation satisfying the head already?

    With a known oid: the stored o-value must cover the head attributes.
    Without (invention pending): any object with matching attributes
    counts (Def. 7's existential extension over the head oid variable).
    """
    if oid is not None:
        stored = ctx.facts.value_of(head.pred, oid)
        if stored is None:
            return False
        return all(
            label in stored and values_unify(stored[label], value)
            for label, value in attrs.items
        )
    if ctx.use_indexes:
        # fast path: a non-oid attribute value only unifies with an
        # equal stored value, so the (pred, label, value) hash index
        # yields exactly the candidate objects — without it, every
        # invention probe scans the whole class (quadratic in the
        # invented population).  Probe every scalar position and keep
        # the smallest bucket: selectivity varies wildly across labels.
        candidates = None
        for label, value in attrs.items:
            if isinstance(value, (Oid, TupleValue)):
                continue
            bucket = ctx.facts.lookup(head.pred, label, value)
            if candidates is None or len(bucket) < len(candidates):
                candidates = bucket
                if not candidates:
                    return False
        if candidates is not None:
            return any(
                all(
                    lbl in fact.value
                    and values_unify(fact.value[lbl], val)
                    for lbl, val in attrs.items
                )
                for fact in candidates
            )
    for fact in ctx.facts.facts_of(head.pred):
        if all(
            label in fact.value and values_unify(fact.value[label], value)
            for label, value in attrs.items
        ):
            return True
    return False


def _derive_object(
    runtime: RuleRuntime,
    head: Literal,
    bindings: Bindings,
    ctx: MatchContext,
    deltas: StepDeltas,
    inventions: InventionRegistry,
    skip_satisfied: bool = True,
    obs=None,
    guard=None,
) -> list[Fact]:
    attrs = _head_attributes(head, bindings, ctx)
    if guard is not None:
        guard.check_fact_size(head.pred, attrs)
    oid: Oid | None = None
    for term in (head.args.self_term, head.args.tuple_var):
        if term is None:
            continue
        try:
            oid = as_oid(resolve_term(term, bindings, ctx))
        except Unbound:
            continue
        if oid is not None:
            break
    if oid is None:
        # oid invention (safety rule 1): skip if the head is already
        # satisfiable, otherwise mint (or re-use) the oid for this
        # substitution.
        if skip_satisfied and _head_satisfied(head, attrs, None, ctx):
            return []
        oid, fresh = inventions.oid_for(runtime.index, bindings)
        if fresh:
            deltas.inventions += 1
            if guard is not None:
                # invention-site budget check: a runaway inventing rule
                # is stopped mid-iteration, not one iteration late
                guard.on_invention(inventions.count)
            if obs is not None:
                obs.invention(runtime, oid)
    else:
        if oid.is_nil:
            raise EvaluationError(
                f"cannot insert the nil oid into class {head.pred!r}"
            )
        if skip_satisfied and _head_satisfied(head, attrs, oid, ctx):
            return []
        stored = ctx.facts.value_of(head.pred, oid)
        if stored is not None:
            attrs = stored.merged(attrs)
        else:
            # carry over attributes known in other classes of the
            # hierarchy (isa oid sharing)
            for other in ctx.schema.class_names:
                other_val = ctx.facts.value_of(other, oid)
                if other_val is not None:
                    eff_labels = set(
                        ctx.schema.effective_type(head.pred).labels
                    )
                    carried = {
                        k: v for k, v in other_val.items if k in eff_labels
                    }
                    attrs = TupleValue(carried).merged(attrs)
    existing_delta = deltas.plus.value_of(head.pred, oid)
    if existing_delta is not None:
        attrs = existing_delta.merged(attrs)
    deltas.plus.add_object(head.pred, oid, attrs)
    return [Fact(head.pred, attrs, oid)]


def _delete_object(
    head: Literal, bindings: Bindings, ctx: MatchContext, deltas: StepDeltas
) -> list[Fact]:
    oid: Oid | None = None
    for term in (head.args.self_term, head.args.tuple_var):
        if term is None:
            continue
        try:
            oid = as_oid(resolve_term(term, bindings, ctx))
        except Unbound as exc:
            raise SafetyError(
                f"deletion head {head!r} has unbound oid variable"
                f" {exc.var!r}"
            ) from None
        if oid is not None:
            break
    if oid is None:
        raise SafetyError(
            f"deletion from class {head.pred!r} requires a bound self or"
            " tuple variable"
        )
    stored = ctx.facts.value_of(head.pred, oid)
    if stored is None:
        return []
    for label, term in head.args.labeled:
        value = resolve_term(term, bindings, ctx)
        if label not in stored or not values_unify(stored[label], value):
            return []
    deltas.minus.add_object(head.pred, oid, stored)
    return [Fact(head.pred, stored, oid)]


def _derive_tuple(
    head: Literal,
    bindings: Bindings,
    ctx: MatchContext,
    deltas: StepDeltas,
    skip_satisfied: bool = True,
    guard=None,
) -> list[Fact]:
    attrs = _head_attributes(head, bindings, ctx)
    if guard is not None:
        guard.check_fact_size(head.pred, attrs)
    fact = Fact(head.pred, attrs)
    if skip_satisfied and fact in ctx.facts:
        return []
    deltas.plus.add(fact)
    return [fact]


def _delete_tuples(
    head: Literal, bindings: Bindings, ctx: MatchContext, deltas: StepDeltas
) -> list[Fact]:
    attrs = _head_attributes(head, bindings, ctx)
    eff_labels = ctx.schema.effective_type(head.pred).labels
    if set(attrs.labels) >= set(eff_labels):
        fact = Fact(head.pred, attrs.project(eff_labels))
        deltas.minus.add(fact)
        return [fact]
    # partial deletion pattern: delete every matching stored tuple
    out = []
    for fact in ctx.facts.facts_of(head.pred):
        if all(
            label in fact.value and values_unify(fact.value[label], value)
            for label, value in attrs.items
        ):
            deltas.minus.add(fact)
            out.append(fact)
    return out


# ---------------------------------------------------------------------------
# full step
# ---------------------------------------------------------------------------
def compute_deltas(
    runtimes: list[RuleRuntime],
    ctx: MatchContext,
    inventions: InventionRegistry,
    skip_satisfied: bool = True,
    obs=None,
    domains: ActiveDomains | None = None,
    guard=None,
) -> StepDeltas:
    """Apply every rule once against the current fact set.

    ``domains`` lets the incremental engine pass a persistent
    :class:`ActiveDomains` (invalidated per changed predicate) instead of
    rebuilding the caches from scratch each step.  ``obs`` (an enabled
    :class:`repro.observability.Instrumentation`, or None) receives
    per-rule wall time and the rule-fired stream; the ``obs is None``
    loop is kept separate so the uninstrumented hot path pays nothing.
    """
    deltas = StepDeltas()
    if domains is None:
        domains = ActiveDomains(ctx.facts, ctx.schema)
    if obs is None:
        for runtime in runtimes:
            if runtime.rule.head is None:
                continue  # denials: evaluated by the consistency checker
            if runtime.hot and ctx.use_indexes:
                # compiled fast path: the closure chain derives the same
                # ground facts as evaluate_body + process_head
                emit = runtime.compiled.make_delta_emit(
                    ctx, deltas, guard, skip_satisfied
                )
                runtime.compiled.run_full(ctx, emit)
                continue
            valuations = 0
            for bindings in evaluate_body(runtime, ctx, domains):
                valuations += 1
                process_head(runtime, bindings, ctx, deltas, inventions,
                             skip_satisfied, guard=guard)
            if runtime.compiled is not None:
                runtime.note_work(valuations)
        return deltas
    clock = time.perf_counter
    for runtime in runtimes:
        if runtime.rule.head is None:
            continue  # denials are evaluated by the consistency checker
        started = clock()
        for bindings in evaluate_body(runtime, ctx, domains):
            process_head(runtime, bindings, ctx, deltas, inventions,
                         skip_satisfied, obs, guard=guard)
        obs.rule_evaluated(runtime, clock() - started)
    return deltas


def apply_deltas(current: FactSet, deltas: StepDeltas) -> FactSet:
    """The ``VAR'`` formula of the one-step inflationary operator:

    ``((F ⊕ Δ⁺) − Δ⁻) ⊕ (F ∩ Δ⁺ ∩ Δ⁻)``

    Reference (copying) implementation: builds a fresh fact set in
    O(|F|).  The incremental kernel uses :func:`apply_deltas_inplace`,
    which computes the identical state in O(|Δ|).
    """
    survivors = current.intersection(deltas.plus).intersection(deltas.minus)
    return current.compose(deltas.plus).minus(deltas.minus).compose(
        survivors
    )


def apply_deltas_inplace(facts: FactSet, deltas: StepDeltas) -> NetChange:
    """Apply the ``VAR'`` formula by mutating ``facts``, in O(|Δ|).

    Equivalent to ``facts = apply_deltas(facts, deltas)`` (the same
    composition order, so o-value conflicts resolve identically), but
    only the entries named by Δ⁺ / Δ⁻ are touched and the returned
    :class:`NetChange` reports the exact difference between the old and
    new states — empty net change *is* the fixpoint condition.
    """
    plus_facts = list(deltas.plus.facts())
    minus_facts = list(deltas.minus.facts())
    # F ∩ Δ⁺ ∩ Δ⁻, evaluated over the delta (small) side
    survivors = [
        f for f in plus_facts if f in deltas.minus and f in facts
    ]
    # snapshot the touched entries so the net change is exact
    before_class: dict[tuple[str, Oid], TupleValue | None] = {}
    before_assoc: dict[tuple[str, TupleValue], bool] = {}
    for f in itertools.chain(plus_facts, minus_facts):
        if f.oid is not None:
            key = (f.pred, f.oid)
            if key not in before_class:
                before_class[key] = facts.value_of(f.pred, f.oid)
        else:
            akey = (f.pred, f.value)
            if akey not in before_assoc:
                before_assoc[akey] = f in facts
    for f in plus_facts:  # F ⊕ Δ⁺ (right bias overwrites o-values)
        facts.add(f)
    for f in minus_facts:  # − Δ⁻ (exact match)
        facts.discard(f)
    for f in survivors:  # ⊕ (F ∩ Δ⁺ ∩ Δ⁻)
        facts.add(f)
    net = NetChange()
    for (pred, oid), old in before_class.items():
        new = facts.value_of(pred, oid)
        if new == old:
            continue
        if old is not None:
            net.removed.append(Fact(pred, old, oid))
        if new is not None:
            net.added.append(Fact(pred, new, oid))
    for (pred, value), was_present in before_assoc.items():
        now_present = Fact(pred, value) in facts
        if now_present and not was_present:
            net.added.append(Fact(pred, value))
        elif was_present and not now_present:
            net.removed.append(Fact(pred, value))
    return net
