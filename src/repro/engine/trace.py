"""Derivation tracing and explanation.

Section 5 lists "tools supporting the design, debugging, and monitoring
of LOGRES databases and programs" as the project's planned environment.
:class:`Tracer` implements the monitoring half: attached to an engine
run, it records which rule and valuation produced every derived fact and
at which iteration, and can reconstruct a *derivation tree* for any fact
of the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.valuation import Bindings, MatchContext
from repro.language.ast import Literal, Rule
from repro.storage.factset import Fact, FactSet
from repro.types.schema import Schema
from repro.values.complex import Value


@dataclass(frozen=True)
class Derivation:
    """One recorded derivation step."""

    fact: Fact
    rule: Rule
    bindings: tuple[tuple[str, Value], ...]
    iteration: int
    deleted: bool = False

    def binding_dict(self) -> dict[str, Value]:
        return dict(self.bindings)

    def __repr__(self) -> str:
        action = "deleted" if self.deleted else "derived"
        return (
            f"[step {self.iteration}] {action} {self.fact!r}"
            f" by {self.rule!r}"
        )


@dataclass
class DerivationNode:
    """A node of an explanation tree."""

    fact: Fact
    rule: Rule | None  # None: extensional (present in the EDB)
    iteration: int = 0
    premises: list["DerivationNode"] = field(default_factory=list)

    @property
    def is_extensional(self) -> bool:
        return self.rule is None

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.rule is None:
            head = f"{pad}{self.fact!r}   (extensional)"
        else:
            head = (
                f"{pad}{self.fact!r}   <= step {self.iteration},"
                f" rule: {self.rule!r}"
            )
        return "\n".join(
            [head] + [p.render(indent + 1) for p in self.premises]
        )

    def __repr__(self) -> str:
        return self.render()


class Tracer:
    """Collects derivations during a run and explains result facts.

    The tracer is an *event sink*: attached to a run (via
    ``Engine.run(..., tracer=...)`` or
    ``Instrumentation.with_extra_sink``), it consumes the engine's
    structured event stream — iteration boundaries, rule firings and
    deletions — and folds it into :class:`Derivation` records.
    """

    def __init__(self) -> None:
        self.derivations: list[Derivation] = []
        self._by_fact: dict[Fact, Derivation] = {}
        # oid-keyed secondary index so class facts recorded with a
        # narrower o-value (attributes merged later) resolve in O(1)
        self._by_oid: dict[tuple[str, object], Derivation] = {}
        self.iteration = 0

    # -- event-sink protocol (fed by the engine's event stream) -----------
    def emit(self, event) -> None:
        kind = event.kind
        if kind == "iteration-start":
            self.begin_iteration(event.number)
        elif kind in ("rule-fire", "deletion") and \
                event.fact_value is not None:
            self.record(event.fact_value, event.rule_value,
                        event.bindings_value, deleted=kind == "deletion")

    def close(self) -> None:
        pass

    # -- recording --------------------------------------------------------
    def begin_iteration(self, number: int) -> None:
        self.iteration = number

    def record(self, fact: Fact, rule: Rule, bindings: Bindings,
               deleted: bool = False) -> None:
        entry = Derivation(
            fact,
            rule,
            tuple(sorted((v.name, value) for v, value in bindings.items())),
            self.iteration,
            deleted,
        )
        self.derivations.append(entry)
        if not deleted:
            if fact not in self._by_fact:
                self._by_fact[fact] = entry  # first derivation wins
            if fact.oid is not None:
                self._by_oid.setdefault((fact.pred, fact.oid), entry)

    # -- queries ----------------------------------------------------------
    def derivation_of(self, fact: Fact) -> Derivation | None:
        entry = self._by_fact.get(fact)
        if entry is not None:
            return entry
        # class facts may have been recorded with a narrower o-value
        # (attributes merged later); fall back to the oid index
        if fact.oid is not None:
            return self._by_oid.get((fact.pred, fact.oid))
        return None

    def deletions(self) -> list[Derivation]:
        return [d for d in self.derivations if d.deleted]

    def derivations_of(self, fact: Fact) -> list[Derivation]:
        """Every recorded *derivation* (Δ⁺ contribution) covering ``fact``.

        Unlike :meth:`derivation_of`, which returns the first derivation
        of the exact fact, this matches leniently — same predicate, same
        oid for class facts, and every attribute of the queried fact
        unified by the recorded one — which is what why-not provenance
        needs to decide whether an absent fact was ever produced.
        """
        return [
            d for d in self.derivations
            if not d.deleted and derivation_covers(d, fact)
        ]

    def deletions_of(self, fact: Fact) -> list[Derivation]:
        """Every recorded Δ⁻ contribution covering ``fact`` — the
        deletion-provenance query behind ``repro explain --why-not``."""
        return [
            d for d in self.derivations
            if d.deleted and derivation_covers(d, fact)
        ]

    def explain(
        self,
        fact: Fact,
        facts: FactSet,
        schema: Schema,
        max_depth: int = 12,
    ) -> DerivationNode:
        """The derivation tree of ``fact`` against the final instance.

        Premise facts are reconstructed by re-matching the deriving
        rule's positive body literals under the recorded valuation;
        extensional facts terminate branches.
        """
        return self._explain(fact, facts, schema, max_depth, set())

    def _explain(self, fact, facts, schema, depth, on_path):
        entry = self.derivation_of(fact)
        if entry is None or depth <= 0 or fact in on_path:
            return DerivationNode(fact, None)
        node = DerivationNode(fact, entry.rule, entry.iteration)
        ctx = MatchContext(facts, schema)
        bindings = {
            var: value
            for var, value in _named_bindings(entry)
        }
        on_path = on_path | {fact}
        for literal in entry.rule.body:
            if not isinstance(literal, Literal) or literal.negated:
                continue
            premise_fact = _first_matching_fact(
                literal, bindings, ctx
            )
            if premise_fact is not None:
                node.premises.append(
                    self._explain(premise_fact, facts, schema,
                                  depth - 1, on_path)
                )
        return node

    def __repr__(self) -> str:
        return f"Tracer({len(self.derivations)} derivations)"


def derivation_covers(entry: Derivation, fact: Fact) -> bool:
    """Does a recorded derivation speak about ``fact``?

    Class facts match by oid (the recorded o-value may be narrower than
    the final merged tuple); association facts match when every
    attribute the query names is present and unifies.
    """
    from repro.engine.valuation import values_unify

    recorded = entry.fact
    if recorded.pred != fact.pred:
        return False
    if fact.oid is not None or recorded.oid is not None:
        return recorded.oid == fact.oid
    return all(
        label in recorded.value
        and values_unify(recorded.value[label], value)
        for label, value in fact.value.items
    )


def _named_bindings(entry: Derivation):
    from repro.language.ast import Var

    for name, value in entry.bindings:
        yield Var(name), value


def _first_matching_fact(
    literal: Literal, bindings: Bindings, ctx: MatchContext
) -> Fact | None:
    """The stored fact supporting one body literal under a valuation."""
    from repro.engine.valuation import match_fact

    positive = Literal(literal.pred, literal.args, negated=False)
    for fact in ctx.facts.facts_of(positive.pred):
        if match_fact(positive.args, fact, dict(bindings), ctx) is not None:
            return fact
    return None  # premise no longer present (e.g. deleted later)
