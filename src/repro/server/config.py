"""Server configuration: budgets, admission, tenancy, durability knobs.

Every request served by :mod:`repro.server.http` runs under a
:class:`~repro.engine.guards.ResourceGuard` — there is no unguarded
path, which is what lets the server promise that no request ever holds
a connection forever (``docs/SERVE.md``).  The guard a request gets is
resolved here: server-wide defaults, clamped by the per-tenant caps,
further lowered (never raised) by what the request body asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.guards import ResourceGuard


@dataclass(frozen=True)
class TenantLimits:
    """Per-tenant budget caps: a tenant's requests may ask for *less*
    than these, never more.  ``None`` falls back to the server default."""

    timeout: float | None = None
    max_facts: int | None = None
    max_inventions: int | None = None


def _clamp(requested, cap):
    """The effective budget: the requested value clamped to ``cap``.

    ``None`` requested means "give me the cap"; a cap of ``None`` means
    the dimension is unbounded (only possible when the server config
    explicitly disables the default)."""
    if cap is None:
        return requested
    if requested is None:
        return cap
    return min(requested, cap)


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can be told (``docs/SERVE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8765
    data_dir: str = "."

    # -- request budgets (ResourceGuard defaults; docs/ROBUSTNESS.md) --
    default_timeout: float | None = 10.0
    default_max_facts: int | None = 500_000
    default_max_inventions: int | None = 50_000
    #: per-tenant caps keyed by the ``X-Repro-Tenant`` header value
    tenant_limits: dict[str, TenantLimits] = field(default_factory=dict)

    # -- admission control ---------------------------------------------
    max_concurrent: int = 8
    queue_depth: int = 16
    queue_timeout: float = 2.0
    retry_after: float = 1.0
    max_body_bytes: int = 1_000_000

    # -- durability -----------------------------------------------------
    #: committed writes between snapshot rewrites; the WAL tail past the
    #: last snapshot is replayed on startup
    snapshot_interval: int = 16

    # -- lifecycle ------------------------------------------------------
    drain_deadline: float = 10.0

    def limits_for(self, tenant: str | None) -> TenantLimits:
        if tenant is not None and tenant in self.tenant_limits:
            return self.tenant_limits[tenant]
        return TenantLimits(
            timeout=self.default_timeout,
            max_facts=self.default_max_facts,
            max_inventions=self.default_max_inventions,
        )

    def guard_for(self, tenant: str | None,
                  requested: dict | None = None) -> ResourceGuard:
        """The guard of one request: defaults, tenant-clamped, lowered
        by the request's own ``budgets`` object."""
        caps = self.limits_for(tenant)
        requested = requested or {}
        return ResourceGuard(
            timeout=_clamp(requested.get("timeout"),
                           caps.timeout if caps.timeout is not None
                           else self.default_timeout),
            max_facts=_clamp(requested.get("max_facts"),
                             caps.max_facts if caps.max_facts is not None
                             else self.default_max_facts),
            max_inventions=_clamp(
                requested.get("max_inventions"),
                caps.max_inventions if caps.max_inventions is not None
                else self.default_max_inventions,
            ),
        )
