"""Load generation against a running ``repro serve`` (``docs/SERVE.md``).

N client threads x M requests each, a deterministic read/write mix over
one PR 9 workload family: writes apply small RIDV modules (new facts in
the family's extensional predicates), reads materialize an isolated
snapshot and answer a bounded family goal.  The report carries the
latency quantiles the ``BENCH_serve.json`` trend rows are built from
(``benchmarks/serve_load.py``), plus full status accounting so overload
behaviour (429 + ``Retry-After``) is measurable, not anecdotal.

Everything here speaks plain HTTP (urllib) — the load generator is also
the reference client.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from dataclasses import dataclass, field

from repro.core.database import Database
from repro.modules.state import DatabaseState
from repro.server.registry import ManagedDatabase
from repro.values.oids import Oid
from repro.workloads.families import FAMILIES, resolve_scale

#: per-family write template: one new extensional fact per apply,
#: parameterized by a client-unique counter so writes never collide
WRITE_TEMPLATES: dict[str, str] = {
    "kg": 'rules\n  relates(src "load{i}", dst "load{i}x").',
    "rbac": 'rules\n  user_role(user "load{i}", role "r0").',
    "reach": 'rules\n  edge(src "load{i}", dst "load{i}x").',
    "genealogy": 'rules\n  parent(par "load{i}", chil "load{i}x").',
}

#: per-family bounded read goal (answers stay small at every scale)
READ_GOALS: dict[str, str] = {
    "kg": '?- influence(src "s0", dst Y).',
    "rbac": '?- can(user "u0", perm P).',
    "reach": '?- reach(src "n0", dst Y).',
    "genealogy": '?- ancestor(anc "p1", des D).',
}


def seed_database(data_dir: str, name: str, family: str,
                  scale: str | int, seed: int = 0) -> ManagedDatabase:
    """Materialize one workload family into a served database: the
    family's program as persistent rules, its generated facts as the
    EDB, snapshotted in the server's on-disk format."""
    fam = FAMILIES[family]
    schema, program, edb = fam.build(resolve_scale(scale), seed)
    db = Database(schema, rules=program.rules)
    db.state = DatabaseState(schema, edb, program.rules)
    db.oidgen.reserve_above(Oid(max(1, edb.max_oid_number())))
    managed = ManagedDatabase(name, data_dir)
    managed.db = db
    managed._write_snapshot()
    managed.wal.close()
    return managed


# ---------------------------------------------------------------------------
# the client
# ---------------------------------------------------------------------------
def post_json(base: str, path: str, body: dict,
              timeout: float = 30.0,
              tenant: str | None = None) -> tuple[int, dict, dict]:
    """``(status, payload, headers)`` of one POST; HTTP error statuses
    are returned, not raised (they are data to a load generator)."""
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"),
        method="POST", headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return (resp.status, json.loads(resp.read() or b"{}"),
                    dict(resp.headers))
    except urllib.error.HTTPError as exc:
        try:
            raw = exc.read() or b"{}"
        except (OSError, http.client.HTTPException):
            # the status line arrived but the body was cut (e.g. the
            # server's socket closed mid-drain) — the status is still
            # the answer
            raw = b"{}"
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = {"raw": raw.decode("utf-8", "replace")}
        return exc.code, payload, dict(exc.headers)


@dataclass
class LoadSpec:
    """One load scenario: N clients x M requests, mixed read/write."""

    family: str = "reach"
    clients: int = 4
    requests: int = 25
    #: every k-th request writes; the rest read (k = round(1/ratio))
    write_ratio: float = 0.25
    timeout: float = 30.0
    tenant: str | None = None


@dataclass
class LoadReport:
    """What N x M requests did: statuses, latencies, shed accounting."""

    spec: LoadSpec
    statuses: Counter = field(default_factory=Counter)
    latencies_ms: list[float] = field(default_factory=list)
    write_latencies_ms: list[float] = field(default_factory=list)
    read_latencies_ms: list[float] = field(default_factory=list)
    retry_after_seen: int = 0
    transport_errors: int = 0
    elapsed_s: float = 0.0

    @property
    def total(self) -> int:
        return sum(self.statuses.values()) + self.transport_errors

    @property
    def throughput_rps(self) -> float:
        return self.total / self.elapsed_s if self.elapsed_s else 0.0

    def quantile_ms(self, q: float, which: str = "all") -> float:
        data = {
            "all": self.latencies_ms,
            "read": self.read_latencies_ms,
            "write": self.write_latencies_ms,
        }[which]
        if not data:
            return 0.0
        ordered = sorted(data)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_dict(self) -> dict:
        return {
            "family": self.spec.family,
            "clients": self.spec.clients,
            "requests_per_client": self.spec.requests,
            "write_ratio": self.spec.write_ratio,
            "total": self.total,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "retry_after_seen": self.retry_after_seen,
            "transport_errors": self.transport_errors,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.quantile_ms(0.50), 3),
            "p95_ms": round(self.quantile_ms(0.95), 3),
            "p99_ms": round(self.quantile_ms(0.99), 3),
            "write_p95_ms": round(self.quantile_ms(0.95, "write"), 3),
            "read_p95_ms": round(self.quantile_ms(0.95, "read"), 3),
        }


def run_load(base: str, db_name: str, spec: LoadSpec) -> LoadReport:
    """Drive ``spec.clients`` threads of ``spec.requests`` each against
    ``base`` (e.g. ``http://127.0.0.1:8765``); deterministic mix."""
    write_template = WRITE_TEMPLATES[spec.family]
    read_goal = READ_GOALS[spec.family]
    stride = max(1, round(1 / spec.write_ratio)) if spec.write_ratio else 0
    report = LoadReport(spec)
    lock = threading.Lock()

    def client(client_no: int) -> None:
        for j in range(spec.requests):
            serial = client_no * spec.requests + j
            is_write = stride and (serial % stride == 0)
            if is_write:
                body = {
                    "module": write_template.format(i=serial),
                    "mode": "RIDV",
                }
                op = "apply"
            else:
                body = {"goal": read_goal}
                op = "run"
            started = time.perf_counter()
            try:
                status, _, headers = post_json(
                    base, f"/v1/db/{db_name}/{op}", body,
                    timeout=spec.timeout, tenant=spec.tenant,
                )
            except (OSError, urllib.error.URLError):
                with lock:
                    report.transport_errors += 1
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                report.statuses[status] += 1
                report.latencies_ms.append(elapsed_ms)
                (report.write_latencies_ms if is_write
                 else report.read_latencies_ms).append(elapsed_ms)
                if headers.get("Retry-After"):
                    report.retry_after_seen += 1

    threads = [
        threading.Thread(target=client, args=(n,), daemon=True)
        for n in range(spec.clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.elapsed_s = time.perf_counter() - started
    return report
