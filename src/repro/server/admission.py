"""Admission control: bounded concurrency with load shedding.

The server executes at most ``max_concurrent`` requests at once; up to
``queue_depth`` more may wait (bounded, so memory stays bounded too).
A request that cannot even join the queue — or that waits longer than
``queue_timeout`` without a slot freeing up — is **shed**: the HTTP
layer answers ``429 Too Many Requests`` with a ``Retry-After`` header
and an LG807 JSON body, and the client's budget is never touched.

Shedding at the door instead of accepting everything is what keeps the
in-flight requests inside their latency budgets under overload
(``docs/SERVE.md``): the work the server *does* admit, it finishes.
"""

from __future__ import annotations

import threading
import time

from repro.errors import LogresError


class Overloaded(LogresError):
    """The admission queue is full or the wait timed out (→ 429)."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Counting semaphore with a bounded, timing-out wait queue."""

    def __init__(self, max_concurrent: int = 8, queue_depth: int = 16,
                 queue_timeout: float = 2.0, retry_after: float = 1.0):
        self.max_concurrent = max(1, max_concurrent)
        self.queue_depth = max(0, queue_depth)
        self.queue_timeout = queue_timeout
        self.retry_after = retry_after
        self._cond = threading.Condition(threading.Lock())
        self._active = 0
        self._waiting = 0
        # accounting (exposed on /metrics as server_admission_*)
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0

    # ------------------------------------------------------------------
    def admit(self) -> "_Admission":
        """``with controller.admit():`` — blocks for a slot, raises
        :class:`Overloaded` when the request should be shed."""
        return _Admission(self)

    def _acquire(self) -> None:
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                self.admitted += 1
                return
            if self._waiting >= self.queue_depth:
                self.shed_queue_full += 1
                raise Overloaded(
                    f"admission queue full"
                    f" ({self._active} active, {self._waiting} queued)",
                    retry_after=self.retry_after,
                )
            self._waiting += 1
            deadline = time.monotonic() + self.queue_timeout
            try:
                while self._active >= self.max_concurrent:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.shed_timeout += 1
                        raise Overloaded(
                            f"no execution slot freed within"
                            f" {self.queue_timeout:g}s",
                            retry_after=self.retry_after,
                        )
                    self._cond.wait(timeout=remaining)
                self._active += 1
                self.admitted += 1
            finally:
                self._waiting -= 1

    def _release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify()

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "admitted": self.admitted,
                "shed_queue_full": self.shed_queue_full,
                "shed_timeout": self.shed_timeout,
            }


class _Admission:
    def __init__(self, controller: AdmissionController):
        self._controller = controller

    def __enter__(self):
        self._controller._acquire()
        return self

    def __exit__(self, *exc):
        self._controller._release()
