"""The per-database checksummed JSONL write-ahead log.

The server's durability protocol (``docs/SERVE.md``):

1. a write request executes transactionally in memory
   (:func:`repro.modules.apply.apply_module` under a Savepoint);
2. on success, one **WAL record** — the logical operation (module
   source, mode, semantics), the pre-apply oid-generator position, and
   the post-apply state fingerprints — is appended to
   ``<name>.wal.jsonl`` and **fsynced** before the request is
   acknowledged;
3. every ``snapshot_interval`` commits (and at graceful shutdown) the
   state is rewritten atomically via the crash-safe format-v2
   persistence (:func:`repro.storage.persist.atomic_write_text`), and
   the WAL prefix the snapshot covers is truncated.

The commit point is the fsynced append: a crash *before* it loses an
unacknowledged request (the client saw no 200), a crash *after* it
loses nothing — startup replays the WAL tail past the snapshot by
re-executing each record (oid generation restored to the recorded
position makes the replay bit-deterministic) and verifies the recorded
post-state fingerprints.

Every record line carries a sha256 checksum over its canonical body
(the same scheme as the format-v2 snapshots).  Because appends are
fsynced record-by-record, a crash can only tear the **final** line;
replay therefore tolerates exactly one trailing torn/corrupt line
(that record was never acknowledged) and raises
:class:`~repro.errors.StorageError` for corruption anywhere earlier.

Fault points (``docs/ROBUSTNESS.md``): ``server.wal.append`` fires
before a record reaches the file, ``server.snapshot`` before a
snapshot rewrite.
"""

from __future__ import annotations

import json
import os

from repro.errors import StorageError
from repro.storage.persist import atomic_write_text, state_checksum
from repro.testing.faults import FAULTS

#: bump when a record field changes meaning; replay refuses the future
WAL_VERSION = 1


def make_record(seq: int, kind: str, **fields) -> dict:
    """One WAL record body (checksum added at append time)."""
    record = {"version": WAL_VERSION, "seq": seq, "kind": kind}
    record.update(fields)
    return record


class WriteAheadLog:
    """Append-fsync-ack JSONL log for one managed database."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._stream = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record: write, flush, fsync — the commit
        point of the server's write path."""
        if FAULTS.enabled:
            FAULTS.fire("server.wal.append")
        body = dict(record)
        body.pop("checksum", None)
        line = json.dumps({**body, "checksum": state_checksum(body)},
                          sort_keys=True)
        if self._stream is None or self._stream.closed:
            self._stream = open(self.path, "a", encoding="utf-8")
        self._stream.write(line + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def fsync(self) -> None:
        if self._stream is not None and not self._stream.closed:
            self._stream.flush()
            os.fsync(self._stream.fileno())

    def close(self) -> None:
        if self._stream is not None and not self._stream.closed:
            self.fsync()
            self._stream.close()
        self._stream = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self, after_seq: int = 0) -> list[dict]:
        """Every committed record with ``seq > after_seq``, in order.

        A torn or checksum-corrupt **final** line is the signature of a
        crash mid-append — that record was never acknowledged, so it is
        dropped.  The same damage anywhere earlier means the log itself
        is corrupt and raises :class:`StorageError` (→ LG901).
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
        records: list[dict] = []
        for index, line in enumerate(lines):
            last = index == len(lines) - 1
            problem = None
            record = None
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problem = f"unparseable record: {exc}"
            if record is not None:
                if not isinstance(record, dict):
                    problem = "record is not a JSON object"
                else:
                    recorded = record.pop("checksum", None)
                    computed = state_checksum(record)
                    if recorded != computed:
                        problem = (
                            "checksum mismatch"
                            f" (recorded {str(recorded)[:12]!r},"
                            f" computed {computed[:12]!r})"
                        )
                    elif record.get("version") != WAL_VERSION:
                        problem = (
                            f"unsupported WAL record version"
                            f" {record.get('version')!r}"
                        )
            if problem is not None:
                if last:
                    # torn tail from a crash mid-append: the record was
                    # never acknowledged, dropping it is the correct
                    # recovery (docs/SERVE.md)
                    break
                raise StorageError(
                    f"corrupt write-ahead log {self.path}"
                    f" (record {index + 1}): {problem}"
                )
            if record.get("seq", 0) > after_seq:
                records.append(record)
        return records

    def last_seq(self) -> int:
        records = self.records()
        return records[-1]["seq"] if records else 0

    # ------------------------------------------------------------------
    # truncation (after a snapshot)
    # ------------------------------------------------------------------
    def truncate(self, up_to_seq: int) -> None:
        """Drop records covered by a snapshot at ``up_to_seq``;
        atomic, so a crash mid-truncate leaves the old (longer but
        still correct) log."""
        self.close()
        kept = [
            json.dumps({**r, "checksum": state_checksum(r)},
                       sort_keys=True)
            for r in self.records(after_seq=up_to_seq)
        ]
        text = "\n".join(kept) + ("\n" if kept else "")
        atomic_write_text(self.path, text)
