"""Named persistent databases: locks, snapshots, WAL recovery.

A :class:`ManagedDatabase` wraps one :class:`repro.core.database.Database`
with everything a server needs to share it safely:

* a **reader/writer lock** — writers are serialized; readers take the
  lock only long enough to :meth:`~repro.storage.factset.FactSet.copy`
  a snapshot (the copy carries the hash indexes, PR 1) and evaluate
  entirely outside it, so a long-running read never blocks a write and
  a write never blocks reads;
* the **write-ahead log** (:mod:`repro.server.wal`) appended-and-fsynced
  before any write is acknowledged;
* **snapshot + recovery**: the state is periodically rewritten through
  the crash-safe format-v2 persistence with the covered WAL position
  embedded in the payload, and :meth:`ManagedDatabase.open` replays the
  WAL tail past the snapshot, restoring the oid generator to each
  record's position so the replay is bit-deterministic and verifying
  the recorded post-state fingerprints.

The :class:`DatabaseRegistry` is the tenancy surface: databases are
named files under one data directory, discovered at startup and
creatable at runtime.
"""

from __future__ import annotations

import json
import os
import re
import threading

from repro.core.database import Database
from repro.engine import EvalConfig, Semantics
from repro.errors import LogresError, StorageError
from repro.modules.apply import ApplicationResult, apply_module
from repro.modules.module import Mode, Module
from repro.modules.state import DatabaseState
from repro.modules.txn import state_fingerprints
from repro.server.wal import WriteAheadLog, make_record
from repro.storage.persist import atomic_write_text
from repro.testing.faults import FAULTS

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")

SNAPSHOT_SUFFIX = ".state.json"
WAL_SUFFIX = ".wal.jsonl"


def validate_name(name: str) -> str:
    """Database names are path components; reject anything that is not
    a short lowercase slug (no traversal, no surprises)."""
    if not _NAME_RE.match(name or ""):
        raise ValueError(
            f"invalid database name {name!r}: expected"
            " [a-z0-9][a-z0-9_-]{0,63}"
        )
    return name


class RWLock:
    """A reader/writer lock: many readers or one writer.

    Writer-preferring: once a writer is waiting, new readers queue
    behind it, so a steady read stream cannot starve writes.
    """

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Scope:
        def __init__(self, acquire, release):
            self._acquire, self._release = acquire, release

        def __enter__(self):
            self._acquire()

        def __exit__(self, *exc):
            self._release()

    def read(self) -> "_Scope":
        return self._Scope(self.acquire_read, self.release_read)

    def write(self) -> "_Scope":
        return self._Scope(self.acquire_write, self.release_write)


class ManagedDatabase:
    """One named database: Database + RWLock + WAL + snapshots."""

    def __init__(self, name: str, directory: str,
                 snapshot_interval: int = 16,
                 semantics: Semantics = Semantics.INFLATIONARY):
        self.name = validate_name(name)
        self.directory = os.fspath(directory)
        self.snapshot_interval = max(1, snapshot_interval)
        self.semantics = semantics
        self.lock = RWLock()
        self.db: Database | None = None
        self.wal = WriteAheadLog(self.wal_path)
        #: seq of the last committed (WAL-appended) write
        self.applied_seq = 0
        #: how many WAL records startup replayed past the snapshot
        self.recovered_records = 0
        self._writes_since_snapshot = 0
        #: snapshot rewrites that failed after a committed write — the
        #: write is still durable (it is in the WAL); this is the
        #: graceful-degradation counter the server surfaces as a metric
        self.snapshot_failures = 0

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, self.name + SNAPSHOT_SUFFIX)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, self.name + WAL_SUFFIX)

    @property
    def exists(self) -> bool:
        return os.path.exists(self.snapshot_path)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(self, source: str) -> None:
        """Create from LOGRES source (schema + rules + optional facts)
        and write the initial snapshot."""
        if self.exists:
            raise StorageError(
                f"database {self.name!r} already exists"
            )
        self.db = Database.from_source(source)
        self._write_snapshot()

    def open(self) -> None:
        """Load the snapshot and replay the WAL tail past it.

        Replay re-executes each logical record with the oid generator
        restored to the recorded pre-apply position, then proves the
        recovery by comparing the recorded post-apply fingerprints —
        a mismatch means the snapshot/WAL pair is not self-consistent
        and surfaces as :class:`StorageError` (→ LG901)."""
        text = _read_state_file(self.snapshot_path)
        self.db = Database.loads(text)
        envelope = json.loads(text)
        self.applied_seq = int(envelope.get("wal_seq", 0))
        oid_next = envelope.get("oid_next")
        if oid_next:
            # exact position, not just "above the EDB": replay and
            # future applies must consume the same numbers the original
            # process would have
            self.db.oidgen.restore(max(1, int(oid_next)))
        self.recovered_records = 0
        for record in self.wal.records(after_seq=self.applied_seq):
            self._replay(record)
            self.recovered_records += 1
        self._writes_since_snapshot = self.recovered_records

    def close(self, snapshot: bool = True) -> None:
        """Shutdown path: snapshot (fsynced, truncating the WAL) and
        release the log file handle."""
        with self.lock.write():
            if snapshot and self.db is not None:
                if self._writes_since_snapshot:
                    self._write_snapshot()
            self.wal.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_snapshot(self) -> DatabaseState:
        """An isolated state snapshot for one read request: the schema
        and rule tuple are immutable (shared), the EDB is copied with
        its indexes.  Taken under the read lock; evaluated outside it."""
        with self.lock.read():
            state = self.db.state
            return DatabaseState(
                state.schema, state.edb.copy(), tuple(state.rules)
            )

    def fingerprints(self) -> dict[str, str]:
        with self.lock.read():
            return state_fingerprints(self.db.state)

    def info(self) -> dict:
        with self.lock.read():
            state = self.db.state
            return {
                "name": self.name,
                "facts": state.edb.count(),
                "rules": len(state.rules),
                "applied_seq": self.applied_seq,
                "recovered_records": self.recovered_records,
                "snapshot_failures": self.snapshot_failures,
                "fingerprints": state_fingerprints(state),
            }

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def apply(self, module_source: str, mode: Mode,
              semantics: Semantics | None = None,
              config: EvalConfig | None = None,
              module_name: str = "") -> tuple[ApplicationResult, int]:
        """One transactional, durable write.  Returns the application
        result and the committed WAL sequence number.

        Commit protocol: execute under the Savepoint (any failure rolls
        the in-memory state back, fingerprint-verified), then append to
        the WAL (the commit point — on append failure the in-memory
        advance is abandoned and the oid generator restored), then
        advance the in-memory state and maybe snapshot."""
        sem = semantics or self.semantics
        module = Module.from_source(module_source, name=module_name)
        with self.lock.write():
            oid_next_before = self.db.oidgen.next_number
            result = apply_module(
                self.db.state, module, mode,
                semantics=sem, config=config,
                oidgen=self.db.oidgen, check_initial=False,
            )
            if mode is Mode.RIDI:
                # rule- and data-invariant: a pure query, no state
                # change, nothing to log
                return result, self.applied_seq
            record = make_record(
                self.applied_seq + 1, "apply",
                module=module_source,
                module_name=module_name,
                mode=mode.value,
                semantics=sem.value,
                oid_next=oid_next_before,
                post=state_fingerprints(result.state),
            )
            try:
                self.wal.append(record)
            except BaseException:
                # the write never committed: abandon the new state and
                # rewind the oids it consumed (nothing else references
                # them — the old state is still current)
                self.db.oidgen.restore(oid_next_before)
                raise
            self.applied_seq += 1
            self.db.state = result.state
            self.db._instance_cache = None
            self._writes_since_snapshot += 1
            if self._writes_since_snapshot >= self.snapshot_interval:
                try:
                    self._write_snapshot()
                except (OSError, StorageError, RuntimeError):
                    # the write IS durable (it is in the WAL); a failed
                    # snapshot rewrite degrades gracefully to a longer
                    # replay on the next startup
                    self.snapshot_failures += 1
            return result, self.applied_seq

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _replay(self, record: dict) -> None:
        if record.get("kind") != "apply":
            raise StorageError(
                f"write-ahead log {self.wal_path}: unknown record kind"
                f" {record.get('kind')!r}"
            )
        module = Module.from_source(
            record["module"], name=record.get("module_name", "")
        )
        self.db.oidgen.restore(max(1, int(record["oid_next"])))
        try:
            result = apply_module(
                self.db.state, module, Mode(record["mode"]),
                semantics=Semantics(record["semantics"]),
                oidgen=self.db.oidgen, check_initial=False,
            )
        except LogresError as exc:
            raise StorageError(
                f"write-ahead log {self.wal_path}: replaying committed"
                f" record {record['seq']} failed: {exc}"
            ) from exc
        post = state_fingerprints(result.state)
        if post != record.get("post"):
            drifted = sorted(
                k for k in post if post[k] != (record.get("post") or {}).get(k)
            )
            raise StorageError(
                f"write-ahead log {self.wal_path}: record"
                f" {record['seq']} replay diverged on"
                f" {', '.join(drifted)} (fingerprint mismatch)"
            )
        self.db.state = result.state
        self.db._instance_cache = None
        self.applied_seq = int(record["seq"])

    def _write_snapshot(self) -> None:
        """Atomic snapshot rewrite carrying the covered WAL position.

        The payload is the format-v2 state (checksum over the body, so
        :func:`load_state` verifies it unchanged) plus two envelope
        fields outside the checksummed body: ``wal_seq`` and
        ``oid_next``."""
        if FAULTS.enabled:
            FAULTS.fire("server.snapshot")
        envelope = json.loads(self.db.dumps())
        envelope["wal_seq"] = self.applied_seq
        envelope["oid_next"] = self.db.oidgen.next_number
        atomic_write_text(
            self.snapshot_path,
            json.dumps(envelope, indent=1, sort_keys=True),
        )
        self.wal.truncate(up_to_seq=self.applied_seq)
        self._writes_since_snapshot = 0


def _read_state_file(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as f:
            return f.read()
    except OSError as exc:
        raise StorageError(
            f"cannot read database snapshot {path}: {exc}"
        ) from exc


class DatabaseRegistry:
    """Every named database under one data directory."""

    def __init__(self, data_dir: str, snapshot_interval: int = 16,
                 semantics: Semantics = Semantics.INFLATIONARY):
        self.data_dir = os.fspath(data_dir)
        self.snapshot_interval = snapshot_interval
        self.semantics = semantics
        self._lock = threading.Lock()
        self._databases: dict[str, ManagedDatabase] = {}

    def open_all(self) -> list[str]:
        """Discover and recover every ``*.state.json`` in the data
        directory; returns the recovered names."""
        os.makedirs(self.data_dir, exist_ok=True)
        names = sorted(
            entry[: -len(SNAPSHOT_SUFFIX)]
            for entry in os.listdir(self.data_dir)
            if entry.endswith(SNAPSHOT_SUFFIX)
        )
        for name in names:
            self.get(name)
        return names

    def get(self, name: str) -> ManagedDatabase:
        validate_name(name)
        with self._lock:
            managed = self._databases.get(name)
            if managed is not None:
                return managed
            managed = ManagedDatabase(
                name, self.data_dir,
                snapshot_interval=self.snapshot_interval,
                semantics=self.semantics,
            )
            if not managed.exists:
                raise KeyError(name)
            # registered before the (possibly slow) recovery so a
            # concurrent get() waits on the same object's lock
            self._databases[name] = managed
        with managed.lock.write():
            if managed.db is None:
                managed.open()
        return managed

    def create(self, name: str, source: str) -> ManagedDatabase:
        validate_name(name)
        os.makedirs(self.data_dir, exist_ok=True)
        with self._lock:
            if name in self._databases or os.path.exists(
                os.path.join(self.data_dir, name + SNAPSHOT_SUFFIX)
            ):
                raise StorageError(
                    f"database {name!r} already exists"
                )
            managed = ManagedDatabase(
                name, self.data_dir,
                snapshot_interval=self.snapshot_interval,
                semantics=self.semantics,
            )
            self._databases[name] = managed
        try:
            with managed.lock.write():
                managed.create(source)
        except BaseException:
            with self._lock:
                self._databases.pop(name, None)
            raise
        return managed

    def names(self) -> list[str]:
        with self._lock:
            loaded = set(self._databases)
        on_disk = set()
        if os.path.isdir(self.data_dir):
            on_disk = {
                entry[: -len(SNAPSHOT_SUFFIX)]
                for entry in os.listdir(self.data_dir)
                if entry.endswith(SNAPSHOT_SUFFIX)
            }
        return sorted(loaded | on_disk)

    def close_all(self) -> None:
        """Drain path: snapshot + fsync every open database."""
        with self._lock:
            databases = list(self._databases.values())
        for managed in databases:
            managed.close(snapshot=True)
