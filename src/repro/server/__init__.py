"""``repro serve``: a fault-tolerant multi-tenant database server.

The move from "CLI over files" to a long-lived system serving traffic
(ROADMAP item 1): named persistent databases behind an HTTP surface
exposing run/check/explain/apply/plan, wired end-to-end for fault
tolerance —

* **per-request isolation** — every write runs inside the
  Savepoint-scoped transaction of :func:`repro.modules.apply.apply_module`
  with fingerprint-verified rollback; concurrent readers evaluate
  against cheap :meth:`~repro.storage.factset.FactSet.copy` snapshots;
  a per-database reader/writer lock serializes writers without ever
  blocking reads (:mod:`repro.server.registry`);
* **budgets and admission control** — every request carries a
  :class:`~repro.engine.guards.ResourceGuard` clamped per tenant, and
  a bounded admission queue sheds load with 429 + ``Retry-After``
  (:mod:`repro.server.admission`);
* **durability** — writes append to a per-database checksummed JSONL
  write-ahead log *before* being acknowledged, snapshots reuse the
  crash-safe format-v2 persistence, and startup replays the WAL tail,
  so a ``kill -9`` mid-apply loses nothing committed
  (:mod:`repro.server.wal`);
* **graceful lifecycle** — SIGTERM drains in-flight requests under a
  deadline, rejects new work with 503, snapshots and fsyncs every
  database, and flushes telemetry (:mod:`repro.server.http`).

See ``docs/SERVE.md`` for the endpoint reference and recovery
semantics, and ``docs/ROBUSTNESS.md`` for the exit-code → HTTP status
mapping.
"""

from repro.server.admission import AdmissionController, Overloaded
from repro.server.config import ServerConfig, TenantLimits
from repro.server.http import ReproServer
from repro.server.registry import DatabaseRegistry, ManagedDatabase
from repro.server.wal import WriteAheadLog

__all__ = [
    "AdmissionController",
    "DatabaseRegistry",
    "ManagedDatabase",
    "Overloaded",
    "ReproServer",
    "ServerConfig",
    "TenantLimits",
    "WriteAheadLog",
]
