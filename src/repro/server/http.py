"""The HTTP surface of ``repro serve`` (``docs/SERVE.md``).

Routes (JSON in, JSON out)::

    GET  /healthz                 liveness + drain state
    GET  /metrics                 Prometheus text exposition
    GET  /v1/db                   list databases
    GET  /v1/db/<name>            database info + fingerprints
    POST /v1/db/<name>            create from LOGRES source
    POST /v1/db/<name>/run        materialize a snapshot (+ optional goal)
    POST /v1/db/<name>/check      consistency-check a snapshot
    POST /v1/db/<name>/explain    derivation tree of one instance fact
    POST /v1/db/<name>/apply      transactional, WAL-durable module apply
    POST /v1/db/<name>/plan       the planner's chosen literal orders

Status codes extend the CLI exit-code convention
(``docs/ROBUSTNESS.md``): 200 ↔ exit 0, 409 ↔ exit 1 (violations,
rejected application, absent fact), 422 ↔ exit 2 (parse / analysis /
storage, LG-coded diagnostics in the body), 503 + ``Retry-After`` ↔
exit 3 (budget breach, LG80x) — plus the server-only 429 (admission
shed, LG807), 503 LG808 (draining), 404, 413 and 400.

Every request runs under a :class:`~repro.engine.guards.ResourceGuard`
(clamped per tenant by :class:`~repro.server.config.ServerConfig`),
carries a fresh ``run_id`` echoed as ``X-Repro-Run-Id``, publishes one
:class:`~repro.observability.ServerRequest` event on the bus, and feeds
the ``server_request_seconds`` streaming histogram that ``/metrics``
exposes.  A client that disconnects mid-response is dropped and counted
(``server_client_disconnects``), never propagated.

Fault points: ``server.response`` fires before the response body is
written (``latency`` simulates a slow client, ``io-error`` a mid-request
disconnect); ``server.wal.append`` and ``server.snapshot`` live in the
durability layer.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.constraints.checker import ConsistencyChecker
from repro.engine import Engine, EvalConfig, Semantics
from repro.engine.goals import answer_goal
from repro.engine.guards import BUDGET_CODES
from repro.errors import (
    EvalBudgetExceeded,
    LogresError,
    ModuleApplicationError,
    NonTerminationError,
    ParseError,
    StorageError,
)
from repro.language.parser import parse_source
from repro.modules.module import Mode
from repro.modules.state import materialize
from repro.observability import (
    EventBus,
    ServerRequest,
    StreamingMetrics,
    new_run_id,
    payload_header,
    render_prometheus,
)
from repro.server.admission import AdmissionController, Overloaded
from repro.server.config import ServerConfig
from repro.server.registry import DatabaseRegistry
from repro.testing.faults import FAULTS
from repro.values.oids import OidGenerator

#: write operations a draining server refuses; reads already in flight
#: finish, new work of any kind gets 503 + LG808
_OPS = ("run", "check", "explain", "apply", "plan")


def _diag_dicts(exc: LogresError) -> list[dict]:
    """The structured diagnostics of a failure, synthesized when the
    exception carries none (mirrors the CLI's rendering)."""
    if exc.diagnostics:
        return [d.to_dict() for d in exc.diagnostics]
    if isinstance(exc, ParseError):
        return [Diagnostic("LG101", Severity.ERROR,
                           exc.raw_message).to_dict()]
    if isinstance(exc, StorageError):
        return [Diagnostic("LG901", Severity.ERROR, str(exc)).to_dict()]
    return []


def error_body(code: str, message: str, diagnostics=None) -> dict:
    return {
        **payload_header("server-error"),
        "error": {"code": code, "message": message},
        "diagnostics": diagnostics or [],
    }


class ReproServer:
    """The server object: registry + admission + telemetry + lifecycle."""

    def __init__(self, config: ServerConfig, bus: EventBus | None = None):
        self.config = config
        self.registry = DatabaseRegistry(
            config.data_dir, snapshot_interval=config.snapshot_interval
        )
        self.admission = AdmissionController(
            max_concurrent=config.max_concurrent,
            queue_depth=config.queue_depth,
            queue_timeout=config.queue_timeout,
            retry_after=config.retry_after,
        )
        self.bus = bus or EventBus()
        self.metrics = StreamingMetrics()
        self.draining = threading.Event()
        self.client_disconnects = 0
        self._inflight = 0
        self._inflight_cond = threading.Condition(threading.Lock())
        self._httpd: ThreadingHTTPServer | None = None
        self._closed = False
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Recover every database, bind, and return ``(host, port)``
        (the real port, for ``port=0``)."""
        recovered = self.registry.open_all()
        for name in recovered:
            managed = self.registry.get(name)
            if managed.recovered_records:
                self.metrics.inc(
                    "server_wal_replayed_records", (("db", name),),
                    managed.recovered_records,
                )
        app = self

        class Handler(_Handler):
            server_app = app

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )
        self._httpd.daemon_threads = True
        return self._httpd.server_address[:2]

    def serve_forever(self) -> None:
        """Blocks until :meth:`drain` (or ``shutdown``) completes."""
        if self._httpd is None:
            self.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._finalize()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (must run on the main
        thread; the drain itself happens on a helper thread because
        ``shutdown()`` deadlocks if called from the serving thread)."""

        def _on_signal(signum, frame):
            threading.Thread(
                target=self.drain, name="repro-serve-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def drain(self, deadline: float | None = None) -> bool:
        """Stop accepting work, wait for in-flight requests under the
        deadline, then snapshot + fsync every database and flush
        telemetry.  Returns True when every request finished in time."""
        if self.draining.is_set():
            return True
        self.draining.set()
        limit = (self.config.drain_deadline
                 if deadline is None else deadline)
        finished = self._wait_idle(limit)
        if self._httpd is not None:
            self._httpd.shutdown()
        self._finalize()
        return finished

    def _wait_idle(self, limit: float) -> bool:
        expiry = time.monotonic() + limit
        with self._inflight_cond:
            while self._inflight:
                remaining = expiry - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(timeout=remaining)
        return True

    def _finalize(self) -> None:
        # the work happens *under* the lock: whoever loses the race
        # (the serving thread's finally vs. close()/drain()) blocks
        # until databases are snapshotted and the bus is flushed, so a
        # caller returning from close() can safely delete the data dir
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self.registry.close_all()
            self.bus.flush()
            self.bus.close()

    def close(self) -> None:
        """Test teardown: shutdown without the drain ceremony."""
        self.draining.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self._finalize()

    # ------------------------------------------------------------------
    def enter_request(self) -> None:
        with self._inflight_cond:
            self._inflight += 1

    def exit_request(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cond.notify_all()

    def note_disconnect(self) -> None:
        self.client_disconnects += 1

    def metrics_text(self) -> str:
        """The ``/metrics`` exposition: streaming request metrics plus
        bus, admission, registry and lifecycle gauges folded in."""
        self.bus.fold_metrics(self.metrics)
        for key, value in self.admission.stats().items():
            self.metrics.set_gauge(f"server_admission_{key}", (), value)
        self.metrics.set_gauge(
            "server_client_disconnects", (), self.client_disconnects
        )
        self.metrics.set_gauge(
            "server_draining", (), 1 if self.draining.is_set() else 0
        )
        for name in self.registry.names():
            try:
                managed = self.registry.get(name)
            except (KeyError, LogresError):
                continue
            labels = (("db", name),)
            self.metrics.set_gauge(
                "server_db_applied_seq", labels, managed.applied_seq
            )
            self.metrics.set_gauge(
                "server_db_snapshot_failures", labels,
                managed.snapshot_failures,
            )
        return render_prometheus(self.metrics)


class _Handler(BaseHTTPRequestHandler):
    """One request; ``server_app`` is bound by :meth:`ReproServer.start`."""

    server_app: ReproServer = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    #: a stalled client cannot hold a worker thread forever
    timeout = 30

    # silence the default stderr access log; telemetry rides the bus
    def log_message(self, format, *args):  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802
        app = self.server_app
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["healthz"]:
                self._reply(200, {
                    "status": ("draining" if app.draining.is_set()
                               else "ok"),
                    "databases": app.registry.names(),
                })
                return
            if parts == ["metrics"]:
                self._reply_text(200, app.metrics_text(),
                                 content_type="text/plain; version=0.0.4")
                return
            if parts == ["v1", "db"]:
                self._reply(200, {"databases": app.registry.names()})
                return
        except (BrokenPipeError, ConnectionResetError, OSError):
            app.note_disconnect()
            return
        if len(parts) == 3 and parts[:2] == ["v1", "db"]:
            self._instrumented("info", parts[2], None)
            return
        self._not_found()

    def do_POST(self):  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "db"]:
            self._instrumented("create", parts[2], self._read_body())
            return
        if (len(parts) == 4 and parts[:2] == ["v1", "db"]
                and parts[3] in _OPS):
            self._instrumented(parts[3], parts[2], self._read_body())
            return
        self._not_found()

    def _not_found(self) -> None:
        try:
            self._reply(404, error_body(
                "LG901", f"no route {self.command} {self.path!r}"
            ))
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.server_app.note_disconnect()

    # ------------------------------------------------------------------
    def _instrumented(self, op: str, db_name: str, body) -> None:
        """Admission, budgets, error mapping and telemetry around one
        operation."""
        app = self.server_app
        run_id = new_run_id()
        tenant = self.headers.get("X-Repro-Tenant")
        started = time.perf_counter()
        status = 500
        app.enter_request()
        try:
            if body is _BODY_TOO_LARGE:
                self.close_connection = True  # unread body poisons keep-alive
                status = self._reply(413, error_body(
                    "LG807",
                    f"request body exceeds"
                    f" {app.config.max_body_bytes} bytes",
                ), run_id=run_id)
                return
            if body is _BODY_BAD_JSON:
                status = self._reply(400, error_body(
                    "LG101", "request body is not valid JSON",
                ), run_id=run_id)
                return
            if app.draining.is_set():
                status = self._reply(503, error_body(
                    "LG808", "server is draining, retry elsewhere/later",
                ), retry_after=app.config.retry_after, run_id=run_id)
                return
            try:
                with app.admission.admit():
                    status, payload = self._dispatch(
                        op, db_name, body or {}, tenant
                    )
                    retry = (app.config.retry_after
                             if status == 503 else None)
                    status = self._reply(status, payload,
                                         retry_after=retry, run_id=run_id)
            except Overloaded as exc:
                status = self._reply(429, error_body(
                    "LG807", str(exc),
                ), retry_after=exc.retry_after, run_id=run_id)
            except NonTerminationError as exc:
                code = BUDGET_CODES.get(
                    getattr(exc, "budget", ""), BUDGET_CODES["max_iterations"]
                ) if isinstance(exc, EvalBudgetExceeded) else (
                    BUDGET_CODES["max_iterations"])
                status = self._reply(503, error_body(code, str(exc)),
                                     retry_after=app.config.retry_after,
                                     run_id=run_id)
            except ModuleApplicationError as exc:
                status = self._reply(409, error_body(
                    (exc.diagnostic.code if exc.diagnostic else "LG703"),
                    str(exc), _diag_dicts(exc),
                ), run_id=run_id)
            except KeyError:
                status = self._reply(404, error_body(
                    "LG901", f"no database {db_name!r}",
                ), run_id=run_id)
            except ValueError as exc:
                status = self._reply(400, error_body(
                    "LG101", str(exc),
                ), run_id=run_id)
            except LogresError as exc:
                diags = _diag_dicts(exc)
                code = diags[0]["code"] if diags else "LG901"
                status = self._reply(422, error_body(code, str(exc), diags),
                                     run_id=run_id)
            except (BrokenPipeError, ConnectionResetError):
                raise
            except Exception as exc:  # noqa: BLE001 — the 500 boundary
                # anything unexpected (an injected WAL I/O fault, a bug)
                # becomes a diagnosable 500, never a hung connection;
                # the write it interrupted was not committed (the WAL
                # append is the commit point)
                status = self._reply(500, error_body(
                    "LG901", f"internal error: {exc}",
                ), run_id=run_id)
        except (BrokenPipeError, ConnectionResetError, OSError):
            # the client went away mid-response: drop it, count it,
            # never let it unwind into the server
            app.note_disconnect()
            status = 0
        finally:
            elapsed = time.perf_counter() - started
            labels = (("op", op),)
            app.metrics.observe("server_request_seconds", labels, elapsed)
            app.metrics.inc(
                "server_requests",  # renders as server_requests_total
                (("op", op), ("status", str(status))),
            )
            app.bus.publish(ServerRequest(
                run_id=run_id, method=self.command, path=self.path,
                op=op, db=db_name, tenant=tenant,
                status=status, elapsed=elapsed,
            ))
            # released last: the drain path may close the bus the
            # moment in-flight hits zero
            app.exit_request()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _dispatch(self, op: str, db_name: str, body: dict,
                  tenant: str | None) -> tuple[int, dict]:
        app = self.server_app
        if op == "create":
            source = (body or {}).get("source")
            if not isinstance(source, str):
                raise ValueError('create needs a "source" string')
            managed = app.registry.create(db_name, source)
            return 201, {"created": db_name, **managed.info()}
        managed = app.registry.get(db_name)
        if op == "info":
            return 200, managed.info()

        guard = app.config.guard_for(tenant, body.get("budgets"))
        guard.arm()
        config = EvalConfig(guard=guard)
        semantics = Semantics(body.get("semantics", "inflationary"))

        if op == "apply":
            module = body.get("module")
            if not isinstance(module, str):
                raise ValueError('apply needs a "module" string')
            mode = Mode(str(body.get("mode", "RIDV")).upper())
            result, seq = managed.apply(
                module, mode, semantics=semantics, config=config,
                module_name=str(body.get("name", "")),
            )
            payload = {
                "applied_seq": seq,
                "mode": mode.value,
                "facts": result.state.edb.count(),
                "instance_facts": result.instance.count(),
                "rules": len(result.state.rules),
            }
            if result.answers is not None:
                payload["answers"] = _render_answers(result.answers)
            return 200, payload

        # the read family evaluates an isolated snapshot outside any lock
        state = managed.read_snapshot()
        if op == "run":
            extra = ()
            if isinstance(body.get("rules"), str):
                extra = tuple(parse_source(body["rules"]).rules)
            instance = materialize(
                state, semantics, config, OidGenerator(), extra
            )
            payload = {
                "facts": instance.count(),
                "predicates": {
                    pred: instance.count(pred)
                    for pred in instance.predicates()
                    if not pred.startswith("__")
                },
            }
            goal_text = body.get("goal")
            if isinstance(goal_text, str):
                payload["answers"] = _render_answers(
                    _answer(goal_text, instance, state)
                )
            return 200, payload
        if op == "check":
            instance = materialize(state, semantics, config, OidGenerator())
            checker = ConsistencyChecker(state.schema, state.denials())
            violations = checker.check(instance)
            if violations:
                return 409, {
                    "consistent": False,
                    "violations": [v.render() for v in violations],
                }
            return 200, {"consistent": True,
                         "violations_checked": True}
        if op == "explain":
            from repro.cli import _parse_fact
            from repro.engine.trace import Tracer

            fact_text = body.get("fact")
            if not isinstance(fact_text, str):
                raise ValueError('explain needs a "fact" string')
            fact = _parse_fact(fact_text)
            tracer = Tracer()
            engine = Engine(state.schema, state.evaluation_program(),
                            config=config, oidgen=OidGenerator())
            instance = engine.run(state.edb, semantics, tracer=tracer)
            if fact not in instance:
                return 409, {"holds": False, "fact": fact_text}
            tree = tracer.explain(fact, instance, engine.schema)
            return 200, {"holds": True, "fact": fact_text,
                         "explanation": tree.render()}
        if op == "plan":
            engine = Engine(state.schema, state.evaluation_program(),
                            config)
            plans = engine.explain_plan(state.edb, semantics)
            return 200, {"plans": [p.to_dict() for p in plans]}
        raise ValueError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    # body / reply plumbing
    # ------------------------------------------------------------------
    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server_app.config.max_body_bytes:
            # drain what we can so the connection can still carry the 413
            self.rfile.read(
                min(length, self.server_app.config.max_body_bytes)
            )
            return _BODY_TOO_LARGE
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return _BODY_BAD_JSON
        return parsed if isinstance(parsed, dict) else _BODY_BAD_JSON

    def _reply(self, status: int, payload: dict,
               retry_after: float | None = None,
               run_id: str | None = None) -> int:
        text = json.dumps(payload, sort_keys=True)
        return self._reply_text(
            status, text, content_type="application/json",
            retry_after=retry_after, run_id=run_id,
        )

    def _reply_text(self, status: int, text: str,
                    content_type: str = "text/plain",
                    retry_after: float | None = None,
                    run_id: str | None = None) -> int:
        if FAULTS.enabled:
            FAULTS.fire("server.response")
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after))))
        if run_id is not None:
            self.send_header("X-Repro-Run-Id", run_id)
        self.end_headers()
        self.wfile.write(data)
        return status


#: sentinels `_read_body` returns instead of raising inside the
#: pre-admission phase
_BODY_TOO_LARGE = object()
_BODY_BAD_JSON = object()


def _answer(goal_text: str, instance, state):
    text = goal_text.strip()
    if not text.startswith("goal"):
        text = "goal\n" + text
    goal = parse_source(text).goal
    if goal is None:
        raise ValueError(f"no goal found in {goal_text!r}")
    return answer_goal(goal, instance, state.schema)


def _render_answers(answers) -> list[dict]:
    return [{var: repr(value) for var, value in row.items()}
            for row in answers]
