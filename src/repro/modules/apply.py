"""Application of modules to database states (Sections 4.1-4.2).

``apply_module(state, module, mode)`` computes the new state
``(E1, R1, S1)`` and, for data-invariant modes, the answer to the
module's goal.  An application is *legal* only if the initial state is
consistent and the resulting instance is defined and consistent; an
illegal application raises
:class:`~repro.errors.ModuleApplicationError` and leaves the input state
untouched (states are never mutated — a fresh state is returned).

Mode semantics (quoting Section 4.1):

* **RIDI** — ordinary query: evaluate ``G_M`` over ``R0 ∪ R_M`` against
  ``E0``; the state does not change.
* **RADI** — ``R1 = R0 ∪ R_M``, ``S1 = S0 ∪ S_M``; rejected if the new
  instance is inconsistent; may also answer the goal.
* **RDDI** — ``R1 = R0 − R_M``, ``S1 = S0 − S_M``; may answer the goal.
* **RIDV** — EDB update: ``E1`` is the result of applying the update
  rules ``R_M`` to ``E0``; rules are unchanged. No goal.
* **RADV** — like RIDV, plus ``R1 = R0 ∪ R_M``, ``S1 = S0 ∪ S_M``.
* **RDDV** — ``E1 = E0 − E_M`` where ``E_M`` is the instance of
  ``(∅, R_M)``; ``R1 = R0 − R_M``; ``S1 = S0 − S_M``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.modules import check_module_application
from repro.constraints.checker import ConsistencyChecker, Violation
from repro.engine import Engine, EvalConfig, Semantics
from repro.engine.goals import answer_goal
from repro.errors import LogresError, ModuleApplicationError
from repro.language.ast import Program, Rule
from repro.modules.module import Mode, Module
from repro.modules.state import DatabaseState, materialize
from repro.modules.txn import Savepoint
from repro.storage.factset import FactSet
from repro.testing.faults import FAULTS
from repro.types.schema import Schema
from repro.values.complex import Value
from repro.values.oids import OidGenerator


@dataclass
class ApplicationResult:
    """The outcome of a legal module application."""

    state: DatabaseState          # the new database state (E1, R1, S1)
    instance: FactSet             # the materialized instance I1
    answers: list[dict[str, Value]] | None  # goal answers (DI modes only)
    mode: Mode
    violations_checked: int = 0

    def __repr__(self) -> str:
        goal = (
            f", {len(self.answers)} goal answers"
            if self.answers is not None else ""
        )
        return (
            f"ApplicationResult({self.mode.value}:"
            f" {self.instance.count()} instance facts{goal})"
        )


def apply_module(
    state: DatabaseState,
    module: Module,
    mode: Mode,
    semantics: Semantics = Semantics.INFLATIONARY,
    config: EvalConfig | None = None,
    oidgen: OidGenerator | None = None,
    check_initial: bool = True,
    instrumentation=None,
) -> ApplicationResult:
    """Apply ``module`` to ``state`` under ``mode``.

    ``semantics`` selects the rule semantics for every fixpoint involved —
    this is the mechanism making "modules and databases parametric with
    respect to the semantics of the rules they support" (Section 1).
    An enabled :class:`repro.observability.Instrumentation` records the
    whole application into the ``module_apply_time{mode=...}`` histogram
    and receives the final consistency check's violations as events.

    The whole application runs inside a :class:`repro.modules.txn.Savepoint`
    over the *input* state: any failure — a mode check, a constraint
    violation, a :class:`~repro.errors.EvalBudgetExceeded` guard breach,
    or an arbitrary mid-apply exception — rolls the input state back to
    exactly its pre-apply ``(E, R, S)``, verified by fingerprint
    identity, and re-raises the original failure.  A
    ``module-rollback`` observability event records each rollback.
    """
    obs = instrumentation
    if obs is not None and not obs.enabled:
        obs = None
    started = time.perf_counter() if obs is not None else 0.0
    savepoint = Savepoint(state, oidgen)
    try:
        mode_diags = check_module_application(state, module, mode)
        errors = [d for d in mode_diags if d.severity is Severity.ERROR]
        if errors:
            raise ModuleApplicationError(
                errors[0].message, tuple(mode_diags)
            )
        if check_initial:
            checker = ConsistencyChecker(state.schema, state.denials())
            initial = materialize(state, semantics, config, oidgen)
            _reject_if_inconsistent(
                checker.check(initial), state, module, mode, "initial"
            )

        try:
            if FAULTS.enabled:
                FAULTS.fire(
                    "module.apply",
                    guard=config.guard if config is not None else None,
                )
            if mode is Mode.RIDI:
                result = _apply_ridi(state, module, semantics, config,
                                     oidgen, obs)
            elif mode is Mode.RADI:
                result = _apply_radi(state, module, semantics, config,
                                     oidgen, obs)
            elif mode is Mode.RDDI:
                result = _apply_rddi(state, module, semantics, config,
                                     oidgen, obs)
            elif mode in (Mode.RIDV, Mode.RADV):
                result = _apply_datavariant(
                    state, module, mode, semantics, config, oidgen, obs
                )
            else:
                result = _apply_rddv(state, module, semantics, config,
                                     oidgen, obs)
        except ModuleApplicationError:
            raise
        except LogresError as exc:
            raise ModuleApplicationError(
                f"applying module {module.name!r} with {mode.value} failed:"
                f" {exc}"
            ) from exc
        savepoint.release()
        return result
    except BaseException as exc:
        _rollback(savepoint, module, mode, exc, obs)
        raise
    finally:
        if obs is not None and obs.metrics is not None:
            obs.metrics.observe(
                "module_apply_time",
                (("mode", mode.value),),
                time.perf_counter() - started,
            )


def _rollback(savepoint: Savepoint, module: Module, mode: Mode,
              cause: BaseException, obs) -> None:
    """Restore the pre-apply state and record the rollback.

    A failed restoration (:class:`~repro.errors.TransactionError`)
    propagates *instead of* the original failure, chained to it —
    corruption outranks the error that exposed it.
    """
    from repro.errors import TransactionError

    restored = False
    try:
        savepoint.rollback()
        restored = True
    except TransactionError as txn_exc:
        raise txn_exc from cause
    finally:
        if obs is not None:
            obs.module_rollback(
                module=module.name,
                mode=mode.value,
                reason=type(cause).__name__,
                error=str(cause),
                restored=restored,
            )


def _reject_if_inconsistent(
    violations: list[Violation],
    state: DatabaseState,
    module: Module,
    mode: Mode,
    which: str,
) -> None:
    if violations:
        preview = "; ".join(v.render() for v in violations[:3])
        message = (
            f"module {module.name!r} ({mode.value}): the {which} state is"
            f" inconsistent — {preview}"
        )
        code = "LG704" if which == "initial" else "LG703"
        raise ModuleApplicationError(
            message,
            (Diagnostic(code, Severity.ERROR, message),),
        )


def _finalize(
    new_state: DatabaseState,
    module: Module,
    mode: Mode,
    semantics: Semantics,
    config: EvalConfig | None,
    oidgen: OidGenerator | None,
    obs=None,
    goal_rules: tuple[Rule, ...] = (),
) -> ApplicationResult:
    """Materialize I1, verify consistency, answer the goal if requested."""
    instance = materialize(new_state, semantics, config, oidgen,
                           extra_rules=goal_rules)
    if FAULTS.enabled:
        FAULTS.fire(
            "module.finalize",
            guard=config.guard if config is not None else None,
        )
    denials = new_state.denials() + tuple(
        r for r in module.rules if r.is_denial
    )
    checker = ConsistencyChecker(new_state.schema, denials)
    violations = checker.check(instance, instrumentation=obs)
    _reject_if_inconsistent(violations, new_state, module, mode, "resulting")
    answers = None
    if module.goal is not None and mode.allows_goal:
        answers = answer_goal(module.goal, instance, new_state.schema)
    return ApplicationResult(
        state=new_state,
        instance=instance,
        answers=answers,
        mode=mode,
    )


def _apply_ridi(state, module, semantics, config, oidgen, obs=None):
    # evaluation sees R0 ∪ RM, but the persistent state is unchanged
    eval_schema = module.extend_schema(state.schema)
    scratch = DatabaseState(eval_schema, state.edb, state.rules)
    result = _finalize(
        scratch, module, Mode.RIDI, semantics, config, oidgen, obs,
        goal_rules=tuple(r for r in module.rules if not r.is_denial),
    )
    return ApplicationResult(
        state=state.copy(),  # E1 = E0, R1 = R0, S1 = S0
        instance=result.instance,
        answers=result.answers,
        mode=Mode.RIDI,
    )


def _apply_radi(state, module, semantics, config, oidgen, obs=None):
    new_state = DatabaseState(
        schema=module.extend_schema(state.schema),
        edb=state.edb.copy(),
        rules=state.rules + tuple(module.rules),
    )
    return _finalize(new_state, module, Mode.RADI, semantics, config,
                     oidgen, obs)


def _apply_rddi(state, module, semantics, config, oidgen, obs=None):
    removed = list(module.rules)
    kept = tuple(r for r in state.rules if r not in removed)
    new_state = DatabaseState(
        schema=module.shrink_schema(state.schema),
        edb=state.edb.copy(),
        rules=kept,
    )
    return _finalize(new_state, module, Mode.RDDI, semantics, config,
                     oidgen, obs)


def _update_edb(
    state: DatabaseState,
    module: Module,
    schema: Schema,
    semantics: Semantics,
    config: EvalConfig | None,
    oidgen: OidGenerator | None,
) -> FactSet:
    """``E1``: the update rules ``R_M`` applied to ``E0`` (RIDV/RADV)."""
    update_rules = tuple(r for r in module.rules if not r.is_denial)
    engine = Engine(schema, Program(update_rules), config=config,
                    oidgen=oidgen)
    return engine.run(state.edb.copy(), semantics)


def _apply_datavariant(state, module, mode, semantics, config, oidgen,
                       obs=None):
    schema1 = module.extend_schema(state.schema)
    e1 = _update_edb(state, module, schema1, semantics, config, oidgen)
    rules1 = state.rules
    if mode is Mode.RADV:
        rules1 = rules1 + tuple(module.rules)
    new_state = DatabaseState(schema=schema1, edb=e1, rules=rules1)
    return _finalize(new_state, module, mode, semantics, config, oidgen,
                     obs)


def _apply_rddv(state, module, semantics, config, oidgen, obs=None):
    # E_M: the instance of (∅, R_M) — what the deleted rules alone derive
    update_rules = tuple(r for r in module.rules if not r.is_denial)
    engine = Engine(state.schema, Program(update_rules), config=config,
                    oidgen=oidgen)
    em = engine.run(FactSet(), semantics)
    e1 = state.edb.minus(em)
    removed = list(module.rules)
    new_state = DatabaseState(
        schema=module.shrink_schema(state.schema),
        edb=e1,
        rules=tuple(r for r in state.rules if r not in removed),
    )
    return _finalize(new_state, module, Mode.RDDV, semantics, config,
                     oidgen, obs)
