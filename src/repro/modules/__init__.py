"""Modules, queries, and updates (Section 4)."""

from repro.modules.state import DatabaseState, materialize
from repro.modules.module import Mode, Module
from repro.modules.apply import ApplicationResult, apply_module
from repro.modules.evolution import Evolution, EvolutionStep
from repro.modules.txn import Savepoint, state_fingerprints

__all__ = [
    "ApplicationResult",
    "DatabaseState",
    "Evolution",
    "EvolutionStep",
    "Mode",
    "Module",
    "Savepoint",
    "apply_module",
    "materialize",
    "state_fingerprints",
]
