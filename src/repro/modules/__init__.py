"""Modules, queries, and updates (Section 4)."""

from repro.modules.state import DatabaseState, materialize
from repro.modules.module import Mode, Module
from repro.modules.apply import ApplicationResult, apply_module
from repro.modules.evolution import Evolution, EvolutionStep

__all__ = [
    "ApplicationResult",
    "DatabaseState",
    "Evolution",
    "EvolutionStep",
    "Mode",
    "Module",
    "apply_module",
    "materialize",
]
