"""Database states ``(E, R, S)`` and instance materialization.

Section 3.1 reinterprets the EDB: "A database state is the triple
(E, R, S): the set of tuples extensionally stored, the rules (which define
more facts), and the schema of the database.  The database instance is the
result of applying the rules R to E."  A predicate may thus be defined
partly extensionally and partly intensionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.constraints.generate import isa_propagation_rules
from repro.engine import Engine, EvalConfig, Semantics
from repro.language.ast import Program, Rule
from repro.storage.factset import FactSet
from repro.storage.persist import (
    decode_factset,
    decode_program,
    decode_schema,
    encode_factset,
    encode_program,
    encode_schema,
)
from repro.types.schema import Schema
from repro.values.oids import OidGenerator


@dataclass
class DatabaseState:
    """One consistent database state ``(E, R, S)``."""

    schema: Schema
    edb: FactSet = field(default_factory=FactSet)
    rules: tuple[Rule, ...] = ()

    def persistent_rules(self) -> tuple[Rule, ...]:
        """R without denials (denials are checked, not evaluated)."""
        return tuple(r for r in self.rules if not r.is_denial)

    def denials(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_denial)

    def evaluation_program(
        self, extra_rules: tuple[Rule, ...] = ()
    ) -> Program:
        """R plus the automatically generated active constraints."""
        auto = tuple(isa_propagation_rules(self.schema))
        return Program(
            self.persistent_rules()
            + tuple(r for r in extra_rules if not r.is_denial)
            + auto
        )

    def copy(self) -> "DatabaseState":
        return replace(self, edb=self.edb.copy(), rules=tuple(self.rules))

    # -- persistence -----------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "schema": encode_schema(self.schema),
            "edb": encode_factset(self.edb),
            "program": encode_program(Program(self.rules)),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DatabaseState":
        return cls(
            schema=decode_schema(payload["schema"]),
            edb=decode_factset(payload["edb"]),
            rules=decode_program(payload["program"]).rules,
        )

    def __repr__(self) -> str:
        return (
            f"DatabaseState({self.edb.count()} extensional facts,"
            f" {len(self.rules)} rules, {self.schema!r})"
        )


def materialize(
    state: DatabaseState,
    semantics: Semantics = Semantics.INFLATIONARY,
    config: EvalConfig | None = None,
    oidgen: OidGenerator | None = None,
    extra_rules: tuple[Rule, ...] = (),
) -> FactSet:
    """The instance ``I`` of ``(E, R, S)``: the fixpoint of R applied to E.

    ``extra_rules`` supports the RIDI mode, where a module's rules join the
    evaluation without becoming persistent.
    """
    engine = Engine(
        state.schema,
        state.evaluation_program(extra_rules),
        config=config,
        oidgen=oidgen,
    )
    return engine.run(state.edb, semantics)
