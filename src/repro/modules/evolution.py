"""Database evolution: sequences of module applications (Section 1).

"The evolution of a LOGRES database is obtained through sequences of
applications of update modules to existing LOGRES database states."
:class:`Evolution` makes that sequence a first-class object: an append-
only log of (module, mode) steps with the state each produced, supporting
atomic multi-step application, inspection, and rollback — possible
because states are immutable values here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import EvalConfig, Semantics
from repro.errors import ModuleApplicationError
from repro.modules.apply import ApplicationResult, apply_module
from repro.modules.module import Mode, Module
from repro.modules.state import DatabaseState
from repro.values.oids import OidGenerator


@dataclass(frozen=True)
class EvolutionStep:
    """One committed step of the evolution log."""

    index: int
    module_name: str
    mode: Mode
    facts_before: int
    facts_after: int
    rules_after: int

    def __repr__(self) -> str:
        delta = self.facts_after - self.facts_before
        sign = "+" if delta >= 0 else ""
        return (
            f"#{self.index} {self.mode.value} {self.module_name!r}"
            f" (E: {sign}{delta} facts, R: {self.rules_after} rules)"
        )


@dataclass
class Evolution:
    """An evolving database: the current state plus its full history."""

    state: DatabaseState
    semantics: Semantics = Semantics.INFLATIONARY
    config: EvalConfig | None = None
    oidgen: OidGenerator = field(default_factory=OidGenerator)
    _states: list[DatabaseState] = field(default_factory=list)
    _log: list[EvolutionStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._states:
            self._states.append(self.state)

    # ------------------------------------------------------------------
    @property
    def log(self) -> list[EvolutionStep]:
        return list(self._log)

    @property
    def version(self) -> int:
        """Number of committed steps."""
        return len(self._log)

    def state_at(self, version: int) -> DatabaseState:
        """The state after ``version`` steps (0 = initial)."""
        if not 0 <= version < len(self._states):
            raise IndexError(
                f"version {version} out of range 0..{self.version}"
            )
        return self._states[version]

    # ------------------------------------------------------------------
    def apply(self, module: Module, mode: Mode) -> ApplicationResult:
        """Apply one module; commits on success, state untouched on
        rejection."""
        result = apply_module(
            self.state, module, mode,
            semantics=self.semantics, config=self.config,
            oidgen=self.oidgen,
        )
        before = self.state.edb.count()
        self.state = result.state
        self._states.append(result.state)
        self._log.append(EvolutionStep(
            index=len(self._log),
            module_name=module.name or "<anonymous>",
            mode=mode,
            facts_before=before,
            facts_after=result.state.edb.count(),
            rules_after=len(result.state.rules),
        ))
        return result

    def apply_all(
        self, steps: list[tuple[Module, Mode]]
    ) -> list[ApplicationResult]:
        """Apply a sequence atomically: if any step is rejected, the
        evolution is left exactly as before the call."""
        checkpoint_state = self.state
        checkpoint_len = len(self._log)
        results = []
        try:
            for module, mode in steps:
                results.append(self.apply(module, mode))
        except ModuleApplicationError:
            self.state = checkpoint_state
            del self._states[checkpoint_len + 1:]
            del self._log[checkpoint_len:]
            raise
        return results

    def rollback(self, version: int) -> DatabaseState:
        """Return to the state after ``version`` steps, discarding the
        later part of the history."""
        target = self.state_at(version)
        self.state = target
        del self._states[version + 1:]
        del self._log[version:]
        return target

    def __repr__(self) -> str:
        return (
            f"Evolution(version {self.version},"
            f" {self.state.edb.count()} facts,"
            f" {len(self.state.rules)} rules)"
        )
