"""Modules ``(R_M, S_M, G_M)`` and the six application modes (Section 4.1).

A module encapsulates a set of rules, a set of type equations, and an
optional goal.  Applying it to a database state is qualified by an option
from the two-axis grid

====== ============== ==============
option rule effect    data effect
====== ============== ==============
RIDI   invariant      invariant (query)
RADI   addition       invariant
RDDI   deletion       invariant
RIDV   invariant      variant (EDB update)
RADV   addition       variant
RDDV   deletion       variant
====== ============== ==============

Data-variant modes never answer a goal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ModuleApplicationError
from repro.language.ast import Goal, Rule
from repro.language.parser import ParsedUnit, parse_source
from repro.types.equations import FunctionDecl, IsaDeclaration, TypeEquation
from repro.types.schema import Schema


class Mode(enum.Enum):
    """Module application options (Section 4.1)."""

    RIDI = "RIDI"
    RADI = "RADI"
    RDDI = "RDDI"
    RIDV = "RIDV"
    RADV = "RADV"
    RDDV = "RDDV"

    @property
    def data_variant(self) -> bool:
        return self.value.endswith("DV")

    @property
    def rule_effect(self) -> str:
        """'invariant', 'addition', or 'deletion'."""
        return {
            "RI": "invariant", "RA": "addition", "RD": "deletion"
        }[self.value[:2]]

    @property
    def allows_goal(self) -> bool:
        """Only data-invariant applications provide a goal answer."""
        return not self.data_variant


@dataclass
class Module:
    """A LOGRES module: rules ``R_M``, type equations ``S_M``, goal ``G_M``."""

    name: str = ""
    rules: tuple[Rule, ...] = ()
    equations: tuple[TypeEquation, ...] = ()
    isa: tuple[IsaDeclaration, ...] = ()
    functions: tuple[FunctionDecl, ...] = ()
    goal: Goal | None = None

    @classmethod
    def from_source(cls, text: str, name: str = "") -> "Module":
        """Build a module from LOGRES source text (any sections)."""
        unit: ParsedUnit = parse_source(text)
        return cls(
            name=name,
            rules=tuple(unit.rules),
            equations=tuple(unit.equations),
            isa=tuple(unit.isa),
            functions=tuple(unit.functions),
            goal=unit.goal,
        )

    def schema_fragment(self) -> "Module":
        return self

    def extend_schema(self, base: Schema) -> Schema:
        """``S0 ∪ SM`` (fragments validate only in combination with S0)."""
        equations = dict(base.equations)
        for eq in self.equations:
            if eq.name in equations and equations[eq.name] != eq:
                raise ModuleApplicationError(
                    f"module {self.name!r} redefines type {eq.name!r}"
                    " incompatibly"
                )
            equations[eq.name] = eq
        isa = list(base.isa_declarations)
        for decl in self.isa:
            if decl not in isa:
                isa.append(decl)
        functions = dict(base.functions)
        for f in self.functions:
            if f.name in functions and functions[f.name] != f:
                raise ModuleApplicationError(
                    f"module {self.name!r} redefines function {f.name!r}"
                    " incompatibly"
                )
            functions[f.name] = f
        return Schema(equations, tuple(isa), functions)

    def shrink_schema(self, base: Schema) -> Schema:
        """``S0 − SM``."""
        removed = {eq.name for eq in self.equations}
        equations = {
            n: eq for n, eq in base.equations.items() if n not in removed
        }
        isa = tuple(
            d for d in base.isa_declarations
            if d not in self.isa and d.sub in equations
            and d.sup in equations
        )
        fn_removed = {f.name for f in self.functions}
        functions = {
            n: f for n, f in base.functions.items() if n not in fn_removed
        }
        return Schema(equations, isa, functions)

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return (
            f"Module({label}: {len(self.rules)} rules,"
            f" {len(self.equations)} equations,"
            f" goal={'yes' if self.goal else 'no'})"
        )
