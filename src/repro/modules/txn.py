"""Transactional module application: savepoints with verified rollback.

:func:`repro.modules.apply.apply_module` promises that an illegal
application "leaves the input state untouched".  This module makes that
promise *verifiable* and keeps it under arbitrary mid-apply failures
(constraint violations, guard breaches, injected faults, plain bugs):

1. :class:`Savepoint` captures the pre-apply state — the schema and
   rule-tuple references (both immutable), an undo-journal mark on the
   EDB fact set (:meth:`repro.storage.factset.FactSet.begin_journal`),
   the :class:`~repro.values.oids.OidGenerator` position, and the
   :func:`state_fingerprints` of the triple ``(E, R, S)``.
2. On failure, :meth:`Savepoint.rollback` replays the journal inverses,
   restores the references and the oid counter, and then *proves* the
   restoration by recomputing the fingerprints: a mismatch raises
   :class:`~repro.errors.TransactionError` (chained to the original
   failure by the caller), because a half-restored database state must
   never be silently reported as intact.
3. On success, :meth:`Savepoint.release` drops the journal.

Fingerprints reuse the persistence encoders, which produce canonical
(sorted) JSON, so they are insensitive to dict/set iteration-order
churn and identical across processes.
"""

from __future__ import annotations

import json

from repro.errors import TransactionError
from repro.language.ast import Program
from repro.modules.state import DatabaseState
from repro.observability.report import fingerprint
from repro.storage.persist import (
    encode_factset,
    encode_program,
    encode_schema,
)
from repro.values.oids import OidGenerator


def state_fingerprints(state: DatabaseState) -> dict[str, str]:
    """Short content hashes of each component of ``(E, R, S)``."""
    def fp(payload) -> str:
        return fingerprint(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    return {
        "schema": fp(encode_schema(state.schema)),
        "edb": fp(encode_factset(state.edb)),
        "program": fp(encode_program(Program(state.rules))),
    }


class Savepoint:
    """One reversible scope over a :class:`DatabaseState`.

    Usage (what :func:`repro.modules.apply.apply_module` does)::

        sp = Savepoint(state, oidgen)
        try:
            ...  # anything, including in-place EDB mutation
        except BaseException:
            sp.rollback()   # state == pre-apply, verified
            raise
        else:
            sp.release()
    """

    def __init__(self, state: DatabaseState,
                 oidgen: OidGenerator | None = None):
        self.state = state
        self.oidgen = oidgen
        self._schema = state.schema
        self._rules = tuple(state.rules)
        self._owns_journal = not state.edb.journaling
        self._mark = state.edb.begin_journal()
        self._oid_next = oidgen.next_number if oidgen is not None else None
        self.fingerprints = state_fingerprints(state)

    def rollback(self) -> None:
        """Restore the captured state exactly; verify by fingerprint."""
        state = self.state
        state.edb.rollback_to(self._mark)
        if self._owns_journal:
            state.edb.end_journal()
        state.schema = self._schema
        state.rules = self._rules
        if self.oidgen is not None:
            self.oidgen.restore(self._oid_next)
        after = state_fingerprints(state)
        if after != self.fingerprints:
            drifted = sorted(
                k for k in after if after[k] != self.fingerprints[k]
            )
            raise TransactionError(
                "savepoint rollback failed to restore the"
                f" {', '.join(drifted)} component(s) of the database"
                " state (fingerprint mismatch after undo)"
            )

    def release(self) -> None:
        """Commit: drop the undo journal (if this savepoint opened it)."""
        if self._owns_journal:
            self.state.edb.end_journal()
