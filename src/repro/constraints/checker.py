"""Consistency checking of database instances.

A state is *consistent* when (Definition 4 plus Section 2.1):

1. every fact structurally matches its predicate's effective type
   (class o-values may be attribute-partial: derived objects need not
   populate every attribute);
2. ``π(sub) ⊆ π(sup)`` for every ``isa`` edge;
3. oids are shared only within one generalization hierarchy;
4. class references inside class o-values are nil or resolvable;
5. class references inside association tuples are non-nil and resolvable
   (deep: also inside nested sets / multisets / sequences / tuples);
6. no passive denial's body is satisfiable.

Module application (Section 4.1) rejects any transition to an
inconsistent state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine.activedomain import ActiveDomains
from repro.engine.step import RuleRuntime, evaluate_body
from repro.engine.valuation import MatchContext
from repro.errors import ConsistencyError
from repro.language.analysis import (
    check_safety,
    check_types,
    resolve_rule,
    schema_with_functions,
)
from repro.language.ast import Rule
from repro.storage.factset import Fact, FactSet
from repro.types.descriptors import (
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleType,
    TypeDescriptor,
)
from repro.types.schema import Schema
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid
from repro.values.typing import value_matches_type


@dataclass(frozen=True)
class Violation:
    """One consistency violation."""

    kind: str       # 'type', 'isa', 'hierarchy', 'reference', 'denial'
    predicate: str
    message: str
    fact: Fact | None = None

    def __repr__(self) -> str:
        return f"[{self.kind}] {self.predicate}: {self.message}"

    def render(self) -> str:
        """A human-readable one-liner, used by ``repro check``."""
        out = f"{self.kind} violation on {self.predicate!r}: {self.message}"
        if self.fact is not None:
            out += f"\n    offending fact: {self.fact!r}"
        return out


class ConsistencyChecker:
    """Checks fact sets against a schema and a set of passive denials."""

    def __init__(self, schema: Schema, denials: tuple[Rule, ...] = ()):
        self.schema = schema
        self._extended = schema_with_functions(schema)
        self.denials = tuple(d for d in denials if d.is_denial)
        self._current_facts: FactSet | None = None

    # ------------------------------------------------------------------
    def check(self, facts: FactSet,
              instrumentation=None) -> list[Violation]:
        """All violations in ``facts`` (empty list = consistent).

        An enabled :class:`repro.observability.Instrumentation` receives
        the check's wall time (``constraint_check_time``) and one
        constraint-violation event per finding.
        """
        obs = instrumentation
        if obs is not None and not obs.enabled:
            obs = None
        started = time.perf_counter() if obs is not None else 0.0
        self._current_facts = facts
        try:
            out: list[Violation] = []
            out.extend(self._check_structure(facts))
            out.extend(self._check_isa(facts))
            out.extend(self._check_references(facts))
            out.extend(self._check_denials(facts))
            return out
        finally:
            self._current_facts = None
            if obs is not None:
                if obs.metrics is not None:
                    obs.metrics.observe(
                        "constraint_check_time",
                        value=time.perf_counter() - started,
                    )
                for violation in out:
                    obs.constraint_violation(violation)

    def require_consistent(self, facts: FactSet) -> None:
        violations = self.check(facts)
        if violations:
            preview = "; ".join(v.render() for v in violations[:3])
            more = len(violations) - 3
            suffix = f" (+{more} more)" if more > 0 else ""
            raise ConsistencyError(
                f"{len(violations)} consistency violations: "
                f"{preview}{suffix}"
            )

    # ------------------------------------------------------------------
    def _check_structure(self, facts: FactSet) -> list[Violation]:
        out = []
        schema = self._extended
        for pred in facts.predicates():
            if not schema.has(pred):
                out.append(Violation(
                    "type", pred, "predicate is not declared in the schema"
                ))
                continue
            eff = schema.effective_type(pred)
            is_class = schema.is_class(pred)
            for fact in facts.facts_of(pred):
                if is_class != fact.is_class_fact:
                    out.append(Violation(
                        "type", pred,
                        "class/association fact shape mismatch", fact,
                    ))
                    continue
                for label in fact.value.labels:
                    if not eff.has_label(label):
                        out.append(Violation(
                            "type", pred,
                            f"unknown attribute {label!r}", fact,
                        ))
                        break
                else:
                    for f in eff.fields:
                        if f.label not in fact.value:
                            if not is_class:
                                out.append(Violation(
                                    "type", pred,
                                    f"association tuple misses attribute"
                                    f" {f.label!r}", fact,
                                ))
                                break
                            continue  # partial class o-values are legal
                        if not value_matches_type(
                            fact.value[f.label], f.type, schema,
                            allow_nil=is_class,
                        ):
                            out.append(Violation(
                                "type", pred,
                                f"attribute {f.label!r} ="
                                f" {fact.value[f.label]!r} does not match"
                                f" type {f.type!r}", fact,
                            ))
                            break
        return out

    def _check_isa(self, facts: FactSet) -> list[Violation]:
        out = []
        schema = self.schema
        for decl in schema.isa_declarations:
            missing = facts.oids_of(decl.sub) - facts.oids_of(decl.sup)
            for oid in sorted(missing, key=lambda o: o.number):
                out.append(Violation(
                    "isa", decl.sub,
                    f"object {oid!r} is in {decl.sub!r} but not in its"
                    f" superclass {decl.sup!r}",
                ))
        # oid-universe partition
        owner: dict[Oid, str] = {}
        for pred in schema.class_names:
            root = schema.hierarchy_root(pred)
            for oid in facts.oids_of(pred):
                prev = owner.setdefault(oid, root)
                if prev != root:
                    out.append(Violation(
                        "hierarchy", pred,
                        f"oid {oid!r} appears in hierarchies {prev!r}"
                        f" and {root!r}",
                    ))
        return out

    def _check_references(self, facts: FactSet) -> list[Violation]:
        out = []
        schema = self._extended
        for pred in facts.predicates():
            if not schema.has(pred):
                continue
            eff = schema.effective_type(pred)
            allow_nil = schema.is_class(pred)
            for fact in facts.facts_of(pred):
                for f in eff.fields:
                    if f.label in fact.value:
                        self._walk_refs(
                            fact.value[f.label], f.type, allow_nil, pred,
                            fact, out,
                        )
        return out

    def _walk_refs(
        self,
        value: Value,
        declared: TypeDescriptor,
        allow_nil: bool,
        pred: str,
        fact: Fact,
        out: list[Violation],
    ) -> None:
        schema = self._extended
        if isinstance(declared, NamedType):
            if schema.is_class(declared.name):
                if not isinstance(value, Oid):
                    return  # structural check already reported this
                if value.is_nil:
                    if not allow_nil:
                        out.append(Violation(
                            "reference", pred,
                            f"nil reference to {declared.name!r} inside an"
                            " association", fact,
                        ))
                    return
                if not self._current_facts.has_oid(declared.name, value):
                    out.append(Violation(
                        "reference", pred,
                        f"dangling reference {value!r} to class"
                        f" {declared.name!r}", fact,
                    ))
                return
            if schema.is_domain(declared.name):
                self._walk_refs(
                    value, schema.rhs_of(declared.name), allow_nil, pred,
                    fact, out,
                )
                return
            self._walk_refs(
                value, schema.effective_type(declared.name), allow_nil,
                pred, fact, out,
            )
            return
        if isinstance(declared, TupleType) and isinstance(value, TupleValue):
            for f in declared.fields:
                if f.label in value:
                    self._walk_refs(
                        value[f.label], f.type, allow_nil, pred, fact, out
                    )
            return
        if isinstance(declared, (SetType, MultisetType, SequenceType)):
            if isinstance(value, (SetValue, MultisetValue, SequenceValue)):
                for v in value:
                    self._walk_refs(v, declared.element, allow_nil, pred,
                                    fact, out)

    def _check_denials(self, facts: FactSet) -> list[Violation]:
        out = []
        ctx = MatchContext(facts, self._extended)
        domains = ActiveDomains(facts, self._extended)
        for denial in self.denials:
            resolved = resolve_rule(denial, self._extended)
            try:
                varinfo = check_types(resolved, self._extended)
                safety = check_safety(resolved, self._extended)
            except Exception as exc:  # ill-typed denial: report, don't crash
                out.append(Violation(
                    "denial", denial.name or "denial",
                    f"denial cannot be evaluated: {exc}",
                ))
                continue
            runtime = RuleRuntime(-1, resolved, safety, varinfo)
            witness = next(evaluate_body(runtime, ctx, domains), None)
            if witness is not None:
                shown = {
                    v.name: witness[v]
                    for v in list(witness)[:4]
                }
                out.append(Violation(
                    "denial", denial.name or "denial",
                    f"denial {resolved!r} is violated, e.g. by {shown}",
                ))
        return out

def check_consistency(
    facts: FactSet, schema: Schema, denials: tuple[Rule, ...] = ()
) -> list[Violation]:
    """Convenience one-shot check."""
    return ConsistencyChecker(schema, denials).check(facts)
