"""Integrity constraints (Sections 2.1 and 4.2).

Type equations automatically generate constraints:

* **isa propagation** — every object of a subclass is an object of its
  superclasses; realized as *active* rules added to every program;
* **referential integrity** — class references inside classes must point
  at existing objects or be nil; references inside associations must point
  at existing objects (nil is illegal);
* **passive constraints (denials)** — headless rules whose body being
  satisfiable makes the state inconsistent.
"""

from repro.constraints.generate import (
    isa_propagation_rules,
    referential_denials,
)
from repro.constraints.checker import (
    ConsistencyChecker,
    Violation,
    check_consistency,
)

__all__ = [
    "ConsistencyChecker",
    "Violation",
    "check_consistency",
    "isa_propagation_rules",
    "referential_denials",
]
