"""Automatic generation of rule-based constraints from type equations.

Section 2.1: "the consistency of legal database states is dictated by a
collection of integrity constraints, which are automatically built from
type equations.  Integrity constraints are expressed using the standard
rule-based programming language."  Section 3.1 adds that every program
implicitly "includes the rules generated as active referential integrity
constraints".

Two families are generated:

* :func:`isa_propagation_rules` — *active* rules
  ``sup(self S) <- sub(self S)`` for every direct ``isa`` edge.  The
  engine's object derivation carries shared attributes across the
  hierarchy, so propagating the oid suffices.
* :func:`referential_denials` — *passive* denial rules documenting the
  referential conditions; the executable check lives in
  :mod:`repro.constraints.checker` (denials over nested components are
  easier to verify directly against the instance than to run as rules).
"""

from __future__ import annotations

from repro.language.ast import Args, Literal, Pattern, Rule, Var
from repro.types.descriptors import NamedType
from repro.types.schema import Schema


def isa_propagation_rules(schema: Schema) -> list[Rule]:
    """One active rule per direct ``isa`` edge, oldest superclass last."""
    rules = []
    for decl in schema.isa_declarations:
        self_var = Var("S")
        head = Literal(
            decl.sup, Args(self_term=self_var)
        )
        body = Literal(decl.sub, Args(self_term=self_var))
        rules.append(
            Rule(head, (body,), name=f"isa:{decl.sub}->{decl.sup}")
        )
    return rules


def referential_denials(schema: Schema) -> list[Rule]:
    """Denial-rule forms of the generated referential constraints.

    For every top-level reference field ``l`` of predicate ``p`` pointing
    at class ``c``::

        <- p(l(self X)), ~c(self X).

    (For class predicates the checker additionally exempts nil; for
    associations nil itself is a violation.)  These rules serve as the
    user-visible, rule-based statement of the constraints; deep (nested)
    references are checked structurally by the consistency checker.
    """
    denials = []
    for pred in schema.predicate_names:
        if pred.startswith("__fn_"):
            continue
        for fld in schema.reference_fields(pred):
            assert isinstance(fld.type, NamedType)
            x = Var("X")
            probe = Literal(
                pred,
                Args(labeled=(
                    (fld.label, Pattern(Args(self_term=x))),
                )),
            )
            absent = Literal(
                fld.type.name, Args(self_term=x), negated=True
            )
            denials.append(Rule(
                None, (probe, absent),
                name=f"ref:{pred}.{fld.label}->{fld.type.name}",
            ))
    return denials
