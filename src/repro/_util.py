"""Small algorithmic helpers shared across subsystems.

Kept dependency-free: strongly connected components (Tarjan), topological
sort, and an order-stable deduplicating frozenset helper.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


def strongly_connected_components(
    graph: Mapping[T, Iterable[T]],
) -> list[list[T]]:
    """Tarjan's algorithm, iterative to avoid recursion limits.

    ``graph`` maps each node to its successors; nodes appearing only as
    successors are included.  Returns SCCs in reverse topological order
    (every edge goes from a later component to an earlier one).
    """
    successors: dict[T, list[T]] = {}
    for node, succs in graph.items():
        successors.setdefault(node, [])
        for s in succs:
            successors[node].append(s)
            successors.setdefault(s, [])

    index_of: dict[T, int] = {}
    lowlink: dict[T, int] = {}
    on_stack: set[T] = set()
    stack: list[T] = []
    components: list[list[T]] = []
    counter = 0

    for root in successors:
        if root in index_of:
            continue
        # Each work item is (node, iterator over remaining successors).
        work = [(root, iter(successors[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[T] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def topological_order(graph: Mapping[T, Iterable[T]]) -> list[T]:
    """Topological order of an acyclic ``graph`` (node -> successors).

    Raises ``ValueError`` if the graph has a cycle.  Deterministic: ties are
    broken by insertion order of the mapping.
    """
    successors: dict[T, list[T]] = {}
    indegree: dict[T, int] = {}
    for node, succs in graph.items():
        successors.setdefault(node, [])
        indegree.setdefault(node, 0)
        for s in succs:
            successors[node].append(s)
            successors.setdefault(s, [])
            indegree[s] = indegree.get(s, 0) + 1
    ready = [n for n in successors if indegree[n] == 0]
    order: list[T] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for s in successors[node]:
            indegree[s] -= 1
            if indegree[s] == 0:
                ready.append(s)
    if len(order) != len(successors):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def unique_in_order(items: Sequence[T]) -> list[T]:
    """The distinct elements of ``items`` in first-occurrence order."""
    seen: set[T] = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out
