"""Translation of LOGRES programs into ALGRES algebra plans.

**Schema mapping.**  Every class becomes a relation with an explicit
``self`` (oid) attribute followed by its effective attributes; every
association becomes a relation with its effective attributes; reference
fields hold oid values.

**Rule mapping.**  Each body literal becomes a scan renamed onto
variable-keyed columns (``v_<name>``); shared variables join naturally;
constants and repeated variables become selections; comparison built-ins
become selection conditions; the head becomes a projection/renaming onto
the head labels.  Rules with the same head predicate union; predicates in
a recursive strongly connected component compile to the
:class:`~repro.algres.expr.Closure` operator (single-predicate recursion;
the recursive scans reference the accumulating ``$iter`` relation).

**Fragment.**  Supported: positive ordinary literals over classes and
associations, ``self`` and labeled variables, constants, the comparison
built-ins (``= != < <= > >=``) over variables, constants, and
arithmetic expressions (equalities binding a fresh variable compile to
Extend columns); *stratified* negated body literals whose variables are
all bound by the positive body (compiled to anti-joins — sound because
each stratum sees completed predicates; equivalent to the engine's
STRATIFIED semantics).  Not supported (CompilationError): unstratified
negation, active-domain negation (variables only inside the negated
literal), deletion heads, oid invention, tuple variables, patterns,
data functions, collection built-ins, mutual recursion across distinct
predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import strongly_connected_components, topological_order
from repro.algres.evaluator import Catalog, evaluate
from repro.algres.expr import (
    ITER,
    And,
    Arith,
    Comparison,
    Condition,
    Constant_,
    Difference,
    Expr,
    Extend,
    Field,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    Closure,
)
from repro.algres.relation import Relation
from repro.errors import CompilationError
from repro.language.analysis import analyze_program
from repro.language.ast import (
    ArithExpr as AstArith,
    BuiltinLiteral,
    Constant,
    Literal,
    Program,
    Rule,
    Var,
)
from repro.storage.factset import Fact, FactSet
from repro.types.descriptors import (
    INTEGER,
    NamedType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.types.schema import Schema
from repro.values.complex import TupleValue

_SELF = "self"
_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


def _var_column(var: Var) -> str:
    return f"v_{var.name.lower()}"


def _relation_type(pred: str, schema: Schema) -> TupleType:
    eff = schema.effective_type(pred)
    fields: list[TupleField] = []
    if schema.is_class(pred):
        fields.append(TupleField(_SELF, INTEGER))  # oid column
    for f in eff.fields:
        ftype: TypeDescriptor = f.type
        if isinstance(ftype, NamedType) and schema.is_class(ftype.name):
            ftype = INTEGER  # references are stored as oid values
        fields.append(TupleField(f.label, ftype))
    return TupleType(tuple(fields))


# ---------------------------------------------------------------------------
# data conversion
# ---------------------------------------------------------------------------
def factset_to_catalog(facts: FactSet, schema: Schema) -> Catalog:
    """Load a LOGRES fact set into an ALGRES catalog."""
    catalog = Catalog()
    for pred in set(schema.predicate_names) | set(facts.predicates()):
        if not schema.has(pred):
            raise CompilationError(
                f"fact predicate {pred!r} is not declared in the schema"
            )
        rtype = _relation_type(pred, schema)
        rows = []
        for fact in facts.facts_of(pred):
            row = fact.value.as_dict()
            if fact.oid is not None:
                row[_SELF] = fact.oid
            rows.append(TupleValue(row))
        catalog.register(pred, Relation(pred, rtype, rows))
    return catalog


def catalog_to_factset(catalog: Catalog, schema: Schema) -> FactSet:
    """Read an ALGRES catalog back into a LOGRES fact set."""
    facts = FactSet()
    for name in catalog.names():
        if name == ITER or not schema.has(name):
            continue
        relation = catalog.get(name)
        is_class = schema.is_class(name)
        for row in relation:
            if is_class:
                oid = row[_SELF]
                facts.add(Fact(name, row.without(_SELF), oid))
            else:
                facts.add(Fact(name, row))
    return facts


# ---------------------------------------------------------------------------
# rule compilation
# ---------------------------------------------------------------------------
@dataclass
class _CompiledRule:
    head_pred: str
    recursive_literals: int
    plan_builder: "object"  # callable: recursive_scan_name -> Expr


def _literal_plan(
    literal: Literal, schema: Schema, scan_name: str
) -> tuple[Expr, dict[Var, str]]:
    """Plan for one body literal: (expression over v_* columns, var map)."""
    args = literal.args
    if args.tuple_var is not None or args.positional:
        raise CompilationError(
            f"tuple variables are outside the compilable fragment:"
            f" {literal!r}"
        )
    expr: Expr = Scan(scan_name)
    conditions: list[Condition] = []
    rename: dict[str, str] = {}
    var_of: dict[Var, str] = {}
    bindings: list[tuple[str, object]] = []  # (column, term)
    if args.self_term is not None:
        if not schema.is_class(literal.pred):
            raise CompilationError(
                f"self argument on association {literal.pred!r}"
            )
        bindings.append((_SELF, args.self_term))
    eff_labels = set(schema.effective_type(literal.pred).labels)
    for label, term in args.labeled:
        if label not in eff_labels:
            raise CompilationError(
                f"unknown label {label!r} on {literal.pred!r}"
            )
        bindings.append((label, term))
    seen_vars: dict[Var, str] = {}
    keep: list[str] = []
    for column, term in bindings:
        if isinstance(term, Constant):
            conditions.append(
                Comparison(Field(column), "=", Constant_(term.value))
            )
        elif isinstance(term, Var):
            if term in seen_vars:
                conditions.append(
                    Comparison(Field(column), "=", Field(seen_vars[term]))
                )
            else:
                seen_vars[term] = column
                target = _var_column(term)
                rename[column] = target
                var_of[term] = target
                keep.append(target)
        else:
            raise CompilationError(
                f"argument term {term!r} is outside the compilable fragment"
            )
    if conditions:
        expr = Select(expr, And(*conditions))
    if rename:
        expr = Rename(expr, rename)
    expr = Project(expr, *keep)
    return expr, var_of


def _compile_rule(
    rule: Rule, schema: Schema, recursive_preds: set[str],
    optimize_plans: bool = False,
) -> _CompiledRule:
    head = rule.head
    if not isinstance(head, Literal) or head.negated:
        raise CompilationError(
            f"only positive ordinary heads are compilable: {rule!r}"
        )
    if schema.is_class(head.pred):
        raise CompilationError(
            f"class heads (oid semantics) are outside the compilable"
            f" fragment: {rule!r}"
        )
    if head.args.tuple_var is not None or head.args.self_term is not None \
            or head.args.positional:
        raise CompilationError(
            f"head must use labeled arguments only: {rule!r}"
        )
    head_labels = {label for label, _ in head.args.labeled}
    wanted = set(schema.effective_type(head.pred).labels)
    if head_labels != wanted:
        raise CompilationError(
            f"compilable heads must bind every attribute of"
            f" {head.pred!r} ({sorted(wanted)}): {rule!r}"
        )
    ordinary = [l for l in rule.body
                if isinstance(l, Literal) and not l.negated]
    if optimize_plans and len(ordinary) > 1:
        # join order from the unified planner: bound-variable
        # propagation picks the left-deep Join sequence, so the
        # algebraic rewriter below only has to push selections, not
        # re-derive a join order of its own
        from repro.engine.planner import static_literal_order

        ordinary = [ordinary[i] for i in static_literal_order(ordinary)]
    negated = [l for l in rule.body
               if isinstance(l, Literal) and l.negated]
    builtins = [l for l in rule.body if isinstance(l, BuiltinLiteral)]
    positive_vars = {
        v for lit in ordinary for v in lit.variables()
    }
    for lit in negated:
        unbound = [v for v in lit.variables() if v not in positive_vars]
        if unbound:
            raise CompilationError(
                f"negated literal {lit!r} has variables {unbound} not"
                " bound by the positive body (active-domain negation is"
                " outside the compilable fragment)"
            )
    for blit in builtins:
        if blit.negated or blit.name not in _COMPARISONS:
            raise CompilationError(
                f"builtin {blit.name!r} is outside the compilable"
                f" fragment: {rule!r}"
            )
    if not ordinary:
        raise CompilationError(
            f"a compilable rule needs at least one ordinary body literal:"
            f" {rule!r}"
        )
    recursive_count = sum(
        1 for l in ordinary if l.pred in recursive_preds
    )

    def build(iter_pred: str | None) -> Expr:
        """Build the plan; recursive literals scan ``$iter``."""
        plan: Expr | None = None
        var_map: dict[Var, str] = {}
        for lit in ordinary:
            scan = (
                ITER if iter_pred is not None and lit.pred == iter_pred
                else lit.pred
            )
            sub, vars_here = _literal_plan(lit, schema, scan)
            if plan is None:
                plan = sub
            else:
                plan = Join(plan, sub)
            var_map.update(vars_here)
        assert plan is not None
        # negation as anti-join: plan − π_plan(plan ⋈ negated-literal)
        # (sound under stratified evaluation: the negated predicate is
        # fully computed before this rule's stratum runs)
        plan_columns = sorted(set(var_map.values()))
        for lit in negated:
            positive_form = Literal(lit.pred, lit.args, negated=False)
            sub, _ = _literal_plan(positive_form, schema,
                                   ITER if iter_pred is not None
                                   and lit.pred == iter_pred
                                   else lit.pred)
            plan = Difference(
                plan,
                Project(Join(plan, sub), *plan_columns),
            )

        def scalar(term) -> "object":
            """Compile a term to an algebra scalar over v_* columns."""
            if isinstance(term, Var):
                if term not in var_map:
                    raise CompilationError(
                        f"builtin variable {term!r} not bound: {rule!r}"
                    )
                return Field(var_map[term])
            if isinstance(term, Constant):
                return Constant_(term.value)
            if isinstance(term, AstArith):
                return Arith(term.op, scalar(term.left),
                             scalar(term.right))
            raise CompilationError(
                f"builtin term {term!r} is outside the compilable"
                f" fragment"
            )

        # equality builtins binding a fresh variable to a computable
        # expression become Extend columns (e.g. Z = Y * 2 + 1);
        # everything else becomes a selection condition
        pending = list(builtins)
        conditions = []
        progress = True
        while progress:
            progress = False
            for blit in list(pending):
                if blit.name != "=" or len(blit.args) != 2:
                    continue
                left, right = blit.args
                target, expr_term = None, None
                if isinstance(left, Var) and left not in var_map:
                    target, expr_term = left, right
                elif isinstance(right, Var) and right not in var_map:
                    target, expr_term = right, left
                if target is None:
                    continue
                try:
                    computed = scalar(expr_term)
                except CompilationError:
                    continue  # may become computable after other binds
                column = _var_column(target)
                plan = Extend(plan, column, computed)
                var_map[target] = column
                pending.remove(blit)
                progress = True
        for blit in pending:
            conditions.append(Comparison(scalar(blit.args[0]), blit.name,
                                         scalar(blit.args[1])))
        if conditions:
            plan = Select(plan, And(*conditions))
        # head projection; a variable may feed several head labels, in
        # which case the extra labels are materialized as copy columns
        rename: dict[str, str] = {}
        keep: list[str] = []
        renamed_sources: set[str] = set()
        for label, term in head.args.labeled:
            if isinstance(term, Var):
                if term not in var_map:
                    raise CompilationError(
                        f"head variable {term!r} unbound: {rule!r}"
                    )
                source = var_map[term]
                if source in renamed_sources:
                    plan = Extend(plan, label, Field(source))
                    keep.append(label)
                else:
                    renamed_sources.add(source)
                    rename[source] = label
                    keep.append(source)
            elif isinstance(term, Constant):
                plan = Extend(plan, label, Constant_(term.value))
                keep.append(label)
            else:
                raise CompilationError(
                    f"head term {term!r} is outside the compilable fragment"
                )
        plan = Project(plan, *keep)
        if rename:
            plan = Rename(plan, rename)
        return plan

    return _CompiledRule(head.pred, recursive_count, build)


@dataclass
class CompiledProgram:
    """An ordered list of (predicate, plan) pairs plus the run driver."""

    schema: Schema
    plans: list[tuple[str, Expr]]

    def run(self, edb: FactSet) -> FactSet:
        """Evaluate the compiled program over an extensional database."""
        catalog = factset_to_catalog(edb, self.schema)
        for pred, plan in self.plans:
            result = evaluate(plan, catalog)
            existing = (
                catalog.get(pred) if catalog.has(pred) else None
            )
            if existing is not None and len(existing):
                result = existing.with_rows(existing.rows | result.rows)
            catalog.register(pred, result.renamed(pred))
        return catalog_to_factset(catalog, self.schema)


def compile_program(
    program: Program, schema: Schema, optimize_plans: bool = False
) -> CompiledProgram:
    """Compile a LOGRES program into ALGRES plans.

    ``optimize_plans`` runs the algebraic optimizer
    (:func:`repro.algres.optimize.optimize`) over every emitted plan —
    selection pushdown, projection cascading, rename merging.

    Raises :class:`CompilationError` on constructs outside the fragment.
    """
    analysis = analyze_program(program, schema)
    if analysis.has_deletion or analysis.has_invention:
        raise CompilationError(
            "deletion and oid invention are outside the compilable"
            " fragment"
        )
    if analysis.has_negation:
        # anti-join negation is sound only for stratified programs;
        # stratify() raises on negation inside a recursive cycle
        analysis.strata()
    rules = [r for r in analysis.rules if r.head is not None]
    # dependency graph over head predicates
    graph: dict[str, set[str]] = {}
    for rule in rules:
        assert isinstance(rule.head, Literal)
        graph.setdefault(rule.head.pred, set())
        for lit in rule.body:
            if isinstance(lit, Literal):
                graph[rule.head.pred].add(lit.pred)
                graph.setdefault(lit.pred, set())
    components = strongly_connected_components(graph)
    recursive_preds: set[str] = set()
    for comp in components:
        if len(comp) > 1:
            defined = [p for p in comp if any(
                isinstance(r.head, Literal) and r.head.pred == p
                for r in rules
            )]
            if len(defined) > 1:
                raise CompilationError(
                    f"mutual recursion {sorted(comp)} is outside the"
                    " compilable fragment"
                )
            recursive_preds.update(defined)
        elif comp and comp[0] in graph.get(comp[0], set()):
            recursive_preds.add(comp[0])

    by_pred: dict[str, list[_CompiledRule]] = {}
    for rule in rules:
        compiled = _compile_rule(rule, analysis.schema, recursive_preds,
                                 optimize_plans=optimize_plans)
        by_pred.setdefault(compiled.head_pred, []).append(compiled)

    # evaluation order: dependencies before dependents
    dep_graph = {
        pred: {
            d for d in graph.get(pred, set())
            if d in by_pred and d != pred
        }
        for pred in by_pred
    }
    order = [
        p for p in reversed(topological_order(dep_graph)) if p in by_pred
    ]

    plans: list[tuple[str, Expr]] = []
    for pred in order:
        compiled_rules = by_pred[pred]
        if pred in recursive_preds:
            seeds = [c.plan_builder(None) for c in compiled_rules
                     if c.recursive_literals == 0]
            steps = []
            for c in compiled_rules:
                if c.recursive_literals == 0:
                    continue
                if c.recursive_literals > 1:
                    raise CompilationError(
                        f"non-linear recursion on {pred!r} is outside the"
                        " compilable fragment"
                    )
                steps.append(c.plan_builder(pred))
            seeds.append(Scan(pred))  # extensional part of the predicate
            seed = _union_all(seeds)
            if not steps:
                plans.append((pred, seed))
                continue
            plans.append((pred, Closure(seed, _union_all(steps))))
        else:
            plans.append((
                pred,
                _union_all([c.plan_builder(None) for c in compiled_rules]),
            ))
    if optimize_plans:
        from repro.algres.optimize import optimize

        plans = [(pred, optimize(plan)) for pred, plan in plans]
    return CompiledProgram(analysis.schema, plans)


def _union_all(exprs: list[Expr]) -> Expr:
    if not exprs:
        raise CompilationError("empty plan")
    out = exprs[0]
    for e in exprs[1:]:
        out = Union(out, e)
    return out
