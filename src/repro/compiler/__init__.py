"""LOGRES-to-ALGRES translation ([Ca90], Section 5).

The prototype described in the paper implements the LOGRES data model on
top of ALGRES by translating classes into relations carrying an explicit
oid attribute and compiling rules into extended-relational-algebra
expressions, with recursion mapped onto the closure operator.  This
package reproduces that translation for the *compilable fragment*:
positive rules without oid invention or head deletion, over class and
association predicates, with comparison built-ins.  Programs outside the
fragment raise :class:`~repro.errors.CompilationError` and must run on the
native engine (the paper itself notes the ALGRES route is "rather
inefficient" and partial).
"""

from repro.compiler.translate import (
    CompiledProgram,
    catalog_to_factset,
    compile_program,
    factset_to_catalog,
)

__all__ = [
    "CompiledProgram",
    "catalog_to_factset",
    "compile_program",
    "factset_to_catalog",
]
