"""A flat (value-oriented) Datalog baseline engine.

Section 3.2 positions LOGRES against flat rule languages in the LDL /
NAIL! tradition.  This package provides an independent, minimal,
positional Datalog engine — naive and semi-naive bottom-up evaluation
with stratified negation — used as the *baseline comparator* in the
benchmark suite and as an oracle in differential tests of the LOGRES
engine on the flat fragment.
"""

from repro.datalog.engine import (
    Atom,
    DatalogEngine,
    DatalogProgram,
    DatalogRule,
    DVar,
)

__all__ = ["Atom", "DVar", "DatalogEngine", "DatalogProgram", "DatalogRule"]
