"""Minimal positional Datalog: naive, semi-naive, stratified negation.

Facts are ``(predicate, value-tuple)`` pairs; rule terms are constants or
:class:`DVar` variables.  The engine is deliberately independent of the
LOGRES machinery (no complex values, no oids, no labels) so it can act as
an unbiased baseline and oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro._util import strongly_connected_components
from repro.errors import EvaluationError, StratificationError

FactTuple = tuple[str, tuple]


@dataclass(frozen=True, slots=True)
class DVar:
    """A Datalog variable."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class Atom:
    """``pred(t1, ..., tn)`` with constants and variables."""

    pred: str
    terms: tuple

    def __init__(self, pred: str, *terms):
        object.__setattr__(self, "pred", pred)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[DVar]:
        return [t for t in self.terms if isinstance(t, DVar)]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.pred}({inner})"


@dataclass(frozen=True, slots=True)
class DatalogRule:
    """``head :- body, not negative``."""

    head: Atom
    body: tuple[Atom, ...] = ()
    negative: tuple[Atom, ...] = ()

    def __post_init__(self):
        bound = {
            v for atom in self.body for v in atom.variables()
        }
        for v in self.head.variables():
            if v not in bound:
                raise EvaluationError(
                    f"unsafe rule: head variable {v!r} not in body"
                )
        for atom in self.negative:
            for v in atom.variables():
                if v not in bound:
                    raise EvaluationError(
                        f"unsafe rule: negated variable {v!r} not bound"
                        " by the positive body"
                    )

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.body]
        parts += [f"not {a!r}" for a in self.negative]
        if not parts:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(parts)}."


@dataclass(frozen=True)
class DatalogProgram:
    rules: tuple[DatalogRule, ...]

    def idb_predicates(self) -> set[str]:
        return {r.head.pred for r in self.rules}


Bindings = dict[DVar, Hashable]


def _match_atom(atom: Atom, fact: tuple, bindings: Bindings
                ) -> Bindings | None:
    if len(fact) != atom.arity:
        return None
    out = bindings
    for term, value in zip(atom.terms, fact):
        if isinstance(term, DVar):
            bound = out.get(term)
            if bound is None:
                if out is bindings:
                    out = dict(bindings)
                out[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return out


class _Index:
    """Facts grouped by predicate, with per-position hash lookup."""

    def __init__(self, facts: Iterable[FactTuple]):
        self.by_pred: dict[str, set[tuple]] = {}
        for pred, row in facts:
            self.by_pred.setdefault(pred, set()).add(row)
        self._positional: dict[tuple, dict] = {}

    def rows(self, pred: str) -> set[tuple]:
        return self.by_pred.get(pred, set())

    def lookup(self, pred: str, position: int, value) -> list[tuple]:
        key = (pred, position)
        index = self._positional.get(key)
        if index is None:
            index = {}
            for row in self.rows(pred):
                index.setdefault(row[position], []).append(row)
            self._positional[key] = index
        return index.get(value, [])

    def contains(self, pred: str, row: tuple) -> bool:
        return row in self.by_pred.get(pred, set())

    def all_facts(self) -> set[FactTuple]:
        return {
            (pred, row)
            for pred, rows in self.by_pred.items()
            for row in rows
        }


def _enumerate_body(
    atoms: list[Atom],
    index: _Index,
    bindings: Bindings,
    restricted: tuple[int, set[tuple]] | None = None,
):
    """All valuations of the positive body; ``restricted`` pins one atom
    (by position) to a delta set (semi-naive)."""
    if not atoms:
        yield bindings
        return
    atom, rest = atoms[0], atoms[1:]
    if restricted is not None and restricted[0] == 0:
        candidates: Iterable[tuple] | None = restricted[1]
        next_restricted = None
    else:
        candidates = None
        next_restricted = (
            (restricted[0] - 1, restricted[1]) if restricted else None
        )
    if candidates is None:
        # pick an indexed position if some term is bound
        candidates = index.rows(atom.pred)
        for position, term in enumerate(atom.terms):
            if not isinstance(term, DVar):
                candidates = index.lookup(atom.pred, position, term)
                break
            if term in bindings:
                candidates = index.lookup(
                    atom.pred, position, bindings[term]
                )
                break
    for row in candidates:
        extended = _match_atom(atom, row, bindings)
        if extended is not None:
            yield from _enumerate_body(rest, index, extended,
                                       next_restricted)


def _apply_rule(
    rule: DatalogRule,
    index: _Index,
    restricted: tuple[int, set[tuple]] | None = None,
) -> set[FactTuple]:
    out: set[FactTuple] = set()
    for bindings in _enumerate_body(list(rule.body), index, {}, restricted):
        blocked = False
        for atom in rule.negative:
            row = tuple(
                bindings[t] if isinstance(t, DVar) else t
                for t in atom.terms
            )
            if index.contains(atom.pred, row):
                blocked = True
                break
        if blocked:
            continue
        head_row = tuple(
            bindings[t] if isinstance(t, DVar) else t
            for t in rule.head.terms
        )
        out.add((rule.head.pred, head_row))
    return out


class DatalogEngine:
    """Bottom-up evaluation of a Datalog program."""

    def __init__(self, program: DatalogProgram | Iterable[DatalogRule]):
        if not isinstance(program, DatalogProgram):
            program = DatalogProgram(tuple(program))
        self.program = program
        self.iterations = 0

    # ------------------------------------------------------------------
    def naive(self, facts: Iterable[FactTuple]) -> set[FactTuple]:
        """Naive evaluation: re-derive everything until no change.

        Negation must be stratifiable; use :meth:`stratified` for
        programs with negation.
        """
        if any(r.negative for r in self.program.rules):
            return self.stratified(facts, seminaive=False)
        return self._fix_positive(
            set(facts), list(self.program.rules), seminaive=False
        )

    def seminaive(self, facts: Iterable[FactTuple]) -> set[FactTuple]:
        """Semi-naive evaluation: only join through new facts."""
        if any(r.negative for r in self.program.rules):
            return self.stratified(facts, seminaive=True)
        return self._fix_positive(
            set(facts), list(self.program.rules), seminaive=True
        )

    def stratified(
        self, facts: Iterable[FactTuple], seminaive: bool = True
    ) -> set[FactTuple]:
        """Perfect-model evaluation of a stratified program."""
        strata = self._strata()
        current = set(facts)
        for rules in strata:
            current = self._fix_positive(current, rules, seminaive)
        return current

    # ------------------------------------------------------------------
    def _fix_positive(
        self,
        facts: set[FactTuple],
        rules: list[DatalogRule],
        seminaive: bool,
    ) -> set[FactTuple]:
        self.iterations = 0
        index = _Index(facts)
        # round 0: all rules over the initial facts
        delta: set[FactTuple] = set()
        for rule in rules:
            delta |= _apply_rule(rule, index) - index.all_facts()
        self.iterations += 1
        while delta:
            for pred, row in delta:
                index.by_pred.setdefault(pred, set()).add(row)
            index._positional.clear()
            self.iterations += 1
            new_delta: set[FactTuple] = set()
            delta_by_pred: dict[str, set[tuple]] = {}
            for pred, row in delta:
                delta_by_pred.setdefault(pred, set()).add(row)
            for rule in rules:
                if seminaive:
                    for position, atom in enumerate(rule.body):
                        if atom.pred in delta_by_pred:
                            derived = _apply_rule(
                                rule, index,
                                (position, delta_by_pred[atom.pred]),
                            )
                            new_delta |= derived
                else:
                    new_delta |= _apply_rule(rule, index)
            existing = index.all_facts()
            delta = new_delta - existing
        return index.all_facts()

    def _strata(self) -> list[list[DatalogRule]]:
        graph: dict[str, set[str]] = {}
        negative_edges: set[tuple[str, str]] = set()
        for rule in self.program.rules:
            graph.setdefault(rule.head.pred, set())
            for atom in rule.body:
                graph[rule.head.pred].add(atom.pred)
                graph.setdefault(atom.pred, set())
            for atom in rule.negative:
                graph[rule.head.pred].add(atom.pred)
                graph.setdefault(atom.pred, set())
                negative_edges.add((rule.head.pred, atom.pred))
        components = strongly_connected_components(graph)
        comp_of: dict[str, int] = {}
        for i, comp in enumerate(components):
            for pred in comp:
                comp_of[pred] = i
        for head, dep in negative_edges:
            if comp_of[head] == comp_of[dep]:
                raise StratificationError(
                    f"{head!r} negatively depends on {dep!r} in a cycle"
                )
        strata: dict[int, list[DatalogRule]] = {}
        for rule in self.program.rules:
            strata.setdefault(comp_of[rule.head.pred], []).append(rule)
        return [strata[i] for i in sorted(strata)]
