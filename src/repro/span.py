"""Source locations.

:class:`Span` records where a syntax node came from (1-based line and
column).  It lives in its own tiny module so that both the language layer
(:mod:`repro.language.ast`) and the schema layer
(:mod:`repro.types.equations`) can attach spans without importing each
other, and so diagnostics (:mod:`repro.analysis`) can point at source
text from anywhere in the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Span:
    """A 1-based (line, column) source position.

    Spans never participate in the equality or hashing of the nodes that
    carry them, so structurally equal nodes parsed from different source
    locations still compare equal.
    """

    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"
