"""Object identifiers (oids).

Oids are system-managed and never visible to users (Section 2.1).  The
universe of oids is countable; ``nil`` is a distinguished oid that is a
legal value for class references *inside classes* but never inside
associations.  Invented oids (Appendix B, Definition 8b) are drawn from an
:class:`OidGenerator`, which hands out fresh identifiers deterministically
so that two evaluations of the same program produce isomorphic instances.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Oid:
    """An object identifier.  ``Oid(0)`` is reserved for ``nil``."""

    number: int

    @property
    def is_nil(self) -> bool:
        return self.number == 0

    def __repr__(self) -> str:
        return "nil" if self.number == 0 else f"&{self.number}"


NIL = Oid(0)


class OidGenerator:
    """Deterministic source of fresh oids.

    The generator starts above any oid already in use, so loading a
    persisted instance and continuing evaluation never collides.
    """

    def __init__(self, start: int = 1):
        if start < 1:
            raise ValueError("oid numbering starts at 1 (0 is nil)")
        self._next = start

    def fresh(self) -> Oid:
        oid = Oid(self._next)
        self._next += 1
        return oid

    def reserve_above(self, oid: Oid) -> None:
        """Ensure future oids are numbered above ``oid``."""
        if oid.number >= self._next:
            self._next = oid.number + 1

    @property
    def next_number(self) -> int:
        return self._next

    def restore(self, number: int) -> None:
        """Rewind to a previously captured :attr:`next_number`.

        Only savepoint rollback (:mod:`repro.modules.txn`) may rewind:
        the oids handed out since the capture are being discarded with
        the state that contained them, so reuse cannot collide."""
        if number < 1:
            raise ValueError("oid numbering starts at 1 (0 is nil)")
        self._next = number

    def __repr__(self) -> str:
        return f"OidGenerator(next={self._next})"
