"""Complex values: tuples, sets, multisets, sequences.

All values are immutable and hashable so they can be members of sets and
keys in fact stores.  Elementary values are plain Python ``int``, ``str``,
``float``, ``bool``; class references are :class:`~repro.values.oids.Oid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Union

from repro.values.oids import Oid

#: The union of every legal LOGRES value shape.
Value = Union[
    int, str, float, bool, Oid,
    "TupleValue", "SetValue", "MultisetValue", "SequenceValue",
]


@dataclass(frozen=True, slots=True, init=False)
class TupleValue:
    """An immutable labeled record ``(L1: v1, ..., Lk: vk)``.

    Labels are stored sorted so equality and hashing are independent of
    construction order.
    """

    items: tuple[tuple[str, Value], ...]
    # lazily computed caches (excluded from equality and repr): the
    # largest nested oid number (-1 = unscanned) and the hash (None =
    # unscanned; fact-set membership tests hash the same immutable
    # tuple many times per fixpoint round)
    _max_oid: int = field(default=-1, compare=False, repr=False)
    _hash: int | None = field(default=None, compare=False, repr=False)

    # positional-only parameters so that "self" remains usable as a
    # keyword label (class tuple bindings carry a reserved self field)
    def __init__(__tv, mapping: Mapping[str, Value] | Iterable = (), /,
                 **kw):
        pairs = dict(mapping)
        pairs.update(kw)
        object.__setattr__(
            __tv, "items", tuple(sorted(pairs.items()))
        )
        object.__setattr__(__tv, "_max_oid", -1)
        object.__setattr__(__tv, "_hash", None)

    @classmethod
    def from_sorted_items(cls, items: tuple) -> "TupleValue":
        """Construct directly from an already label-sorted items tuple.

        The hot compiled-rule path builds thousands of head tuples per
        round; the sort order is decided once at compile time, so the
        general constructor's dict + sort per tuple is skipped here.
        """
        tv = object.__new__(cls)
        object.__setattr__(tv, "items", items)
        object.__setattr__(tv, "_max_oid", -1)
        object.__setattr__(tv, "_hash", None)
        return tv

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self.items)
            object.__setattr__(self, "_hash", h)
        return h

    def max_oid_number(self) -> int:
        """The largest oid number nested anywhere in this tuple, 0 when
        none.  Cached on first call — the value is immutable — so fact
        stores can track their oid high-water mark without rescanning a
        tuple every time it is added to another set."""
        cached = self._max_oid
        if cached < 0:
            cached = max(
                (max_oid_in(v) for _, v in self.items), default=0
            )
            object.__setattr__(self, "_max_oid", cached)
        return cached

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, label: str) -> Value:
        for k, v in self.items:
            if k == label:
                return v
        raise KeyError(label)

    def get(self, label: str, default: Value | None = None) -> Value | None:
        for k, v in self.items:
            if k == label:
                return v
        return default

    def __contains__(self, label: str) -> bool:
        return any(k == label for k, _ in self.items)

    def __iter__(self) -> Iterator[str]:
        return (k for k, _ in self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(k for k, _ in self.items)

    def as_dict(self) -> dict[str, Value]:
        return dict(self.items)

    # -- functional updates ------------------------------------------------
    def project(self, labels: Iterable[str]) -> "TupleValue":
        wanted = set(labels)
        return TupleValue({k: v for k, v in self.items if k in wanted})

    def with_field(self, label: str, value: Value) -> "TupleValue":
        d = self.as_dict()
        d[label] = value
        return TupleValue(d)

    def without(self, *labels: str) -> "TupleValue":
        dropped = set(labels)
        return TupleValue({k: v for k, v in self.items if k not in dropped})

    def merged(self, other: "TupleValue") -> "TupleValue":
        d = self.as_dict()
        d.update(other.as_dict())
        return TupleValue(d)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {value_repr(v)}" for k, v in self.items)
        return f"({inner})"


@dataclass(frozen=True, slots=True, init=False)
class SetValue:
    """An immutable finite set value ``{v1, ..., vn}``."""

    elements: frozenset

    def __init__(self, elements: Iterable = ()):
        object.__setattr__(self, "elements", frozenset(elements))

    def __contains__(self, value: Value) -> bool:
        return value in self.elements

    def __iter__(self) -> Iterator[Value]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def union(self, other: "SetValue") -> "SetValue":
        return SetValue(self.elements | other.elements)

    def intersection(self, other: "SetValue") -> "SetValue":
        return SetValue(self.elements & other.elements)

    def difference(self, other: "SetValue") -> "SetValue":
        return SetValue(self.elements - other.elements)

    def with_element(self, value: Value) -> "SetValue":
        return SetValue(self.elements | {value})

    def __repr__(self) -> str:
        inner = ", ".join(sorted(value_repr(v) for v in self.elements))
        return f"{{{inner}}}"


@dataclass(frozen=True, slots=True, init=False)
class MultisetValue:
    """An immutable multiset value ``[v1, ..., vn]`` (set with duplicates).

    Stored as frozen (element, multiplicity) pairs.
    """

    counts: frozenset  # of (Value, int) pairs

    def __init__(self, elements: Iterable = ()):
        tally: dict[Value, int] = {}
        for v in elements:
            tally[v] = tally.get(v, 0) + 1
        object.__setattr__(self, "counts", frozenset(tally.items()))

    @classmethod
    def from_counts(cls, counts: Mapping[Value, int]) -> "MultisetValue":
        out = cls()
        object.__setattr__(
            out, "counts",
            frozenset((v, n) for v, n in counts.items() if n > 0),
        )
        return out

    def multiplicity(self, value: Value) -> int:
        for v, n in self.counts:
            if v == value:
                return n
        return 0

    def __contains__(self, value: Value) -> bool:
        return self.multiplicity(value) > 0

    def __iter__(self) -> Iterator[Value]:
        for v, n in self.counts:
            for _ in range(n):
                yield v

    def __len__(self) -> int:
        return sum(n for _, n in self.counts)

    @property
    def support(self) -> frozenset:
        """The distinct elements (duplicates removed)."""
        return frozenset(v for v, _ in self.counts)

    def union(self, other: "MultisetValue") -> "MultisetValue":
        tally = {v: n for v, n in self.counts}
        for v, n in other.counts:
            tally[v] = tally.get(v, 0) + n
        return MultisetValue.from_counts(tally)

    def __repr__(self) -> str:
        inner = ", ".join(sorted(value_repr(v) for v in self))
        return f"[{inner}]"


@dataclass(frozen=True, slots=True, init=False)
class SequenceValue:
    """An immutable ordered sequence value ``<v1, ..., vn>``."""

    elements: tuple

    def __init__(self, elements: Iterable = ()):
        object.__setattr__(self, "elements", tuple(elements))

    def __contains__(self, value: Value) -> bool:
        return value in self.elements

    def __iter__(self) -> Iterator[Value]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> Value:
        return self.elements[index]

    def appended(self, value: Value) -> "SequenceValue":
        return SequenceValue(self.elements + (value,))

    def concat(self, other: "SequenceValue") -> "SequenceValue":
        return SequenceValue(self.elements + other.elements)

    def __repr__(self) -> str:
        inner = ", ".join(value_repr(v) for v in self.elements)
        return f"<{inner}>"


def max_oid_in(value: Value) -> int:
    """The largest oid number nested anywhere in ``value``, 0 when none.

    Tuple values cache the answer (see ``TupleValue.max_oid_number``), so
    repeated scans of the same immutable value — e.g. a fact flowing
    through several fact sets during fixpoint iteration — are O(1).
    """
    if isinstance(value, Oid):
        return value.number
    if isinstance(value, TupleValue):
        return value.max_oid_number()
    if hasattr(value, "__iter__") and not isinstance(value, str):
        return max((max_oid_in(v) for v in value), default=0)
    return 0


def value_repr(value: Value) -> str:
    """Readable rendering of any value (strings quoted)."""
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)
