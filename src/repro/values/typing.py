"""Membership of values in the interpretation ``[τ]π`` of a type.

Appendix A interprets each type descriptor as a set of values, relative to
an oid assignment ``π``: ``[I] = integers``, ``[S] = strings``,
``[C]π = π(C)``, ``[D]π = [Σ(D)]π``, tuples / sets / multisets / sequences
pointwise.  :func:`value_matches_type` implements this check, optionally
without a ``π`` (purely structural, any oid accepted for a class position).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.types.descriptors import (
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import Kind
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.types.schema import Schema

_ELEMENTARY_PYTHON = {
    "integer": int,
    "string": str,
    "real": (int, float),
    "boolean": bool,
}


def value_matches_type(
    value: Value,
    descriptor: TypeDescriptor,
    schema: "Schema",
    pi: Mapping[str, set[Oid]] | None = None,
    *,
    allow_nil: bool = True,
    exact_labels: bool = False,
) -> bool:
    """Is ``value`` a member of ``[descriptor]π``?

    ``pi`` maps class names to their current oid sets; when omitted, any
    oid is accepted at a class position.  ``allow_nil`` controls whether
    the nil oid is legal at class positions (it is within classes, never
    within associations).  ``exact_labels`` requires tuple values to carry
    exactly the type's labels; the default tolerates extra labels, which is
    what subclass values projected onto superclass types need.
    """
    if isinstance(descriptor, ElementaryType):
        expected = _ELEMENTARY_PYTHON[descriptor.name]
        if descriptor.name in ("integer", "real") and isinstance(value, bool):
            return False
        return isinstance(value, expected)

    if isinstance(descriptor, NamedType):
        kind = schema.kind_of(descriptor.name)
        if kind is Kind.CLASS:
            if not isinstance(value, Oid):
                return False
            if value.is_nil:
                return allow_nil
            if pi is None:
                return True
            return value in pi.get(descriptor.name.lower(), set())
        if kind is Kind.DOMAIN:
            return value_matches_type(
                value, schema.rhs_of(descriptor.name), schema, pi,
                allow_nil=allow_nil, exact_labels=exact_labels,
            )
        # association used as a structural alias: check against its tuple
        return value_matches_type(
            value, schema.effective_type(descriptor.name), schema, pi,
            allow_nil=allow_nil, exact_labels=exact_labels,
        )

    if isinstance(descriptor, TupleType):
        if not isinstance(value, TupleValue):
            return False
        if exact_labels and set(value.labels) != set(descriptor.labels):
            return False
        for f in descriptor.fields:
            if f.label not in value:
                return False
            if not value_matches_type(
                value[f.label], f.type, schema, pi,
                allow_nil=allow_nil, exact_labels=exact_labels,
            ):
                return False
        return True

    if isinstance(descriptor, SetType):
        if not isinstance(value, SetValue):
            return False
        return all(
            value_matches_type(
                v, descriptor.element, schema, pi,
                allow_nil=allow_nil, exact_labels=exact_labels,
            )
            for v in value
        )

    if isinstance(descriptor, MultisetType):
        if not isinstance(value, MultisetValue):
            return False
        return all(
            value_matches_type(
                v, descriptor.element, schema, pi,
                allow_nil=allow_nil, exact_labels=exact_labels,
            )
            for v in value.support
        )

    if isinstance(descriptor, SequenceType):
        if not isinstance(value, SequenceValue):
            return False
        return all(
            value_matches_type(
                v, descriptor.element, schema, pi,
                allow_nil=allow_nil, exact_labels=exact_labels,
            )
            for v in value
        )

    raise TypeError(f"unknown type descriptor: {descriptor!r}")
