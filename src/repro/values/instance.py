"""Database instances ``(π, ν, ρ)`` (Appendix A, Definition 4).

An instance of a schema consists of:

* ``pi`` — the *oid assignment*: a finite set of oids per class;
* ``nu`` — the *o-value assignment*: one value per oid, whose projection
  onto each containing class's effective type must belong to that type;
* ``rho`` — the *association assignment*: a finite set of tuples per
  association, each belonging to the association's type with every class
  reference pointing at an **existing** object (never nil).

:meth:`Instance.validate` checks every condition of Definition 4 and the
referential constraints of Section 2.1, raising
:class:`~repro.errors.OidError` / :class:`~repro.errors.ValueError_` with a
precise message on the first violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import OidError, ValueError_
from repro.types.descriptors import NamedType, TupleType
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import NIL, Oid
from repro.values.typing import value_matches_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.types.schema import Schema


@dataclass
class Instance:
    """A materialized database instance."""

    pi: dict[str, set[Oid]] = field(default_factory=dict)
    nu: dict[Oid, TupleValue] = field(default_factory=dict)
    rho: dict[str, set[TupleValue]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def objects(self, class_name: str) -> set[Oid]:
        return self.pi.get(class_name.lower(), set())

    def value_of(self, oid: Oid) -> TupleValue:
        try:
            return self.nu[oid]
        except KeyError:
            raise OidError(f"oid {oid!r} has no o-value") from None

    def tuples(self, association: str) -> set[TupleValue]:
        return self.rho.get(association.lower(), set())

    def all_oids(self) -> set[Oid]:
        out: set[Oid] = set()
        for oids in self.pi.values():
            out |= oids
        return out

    def copy(self) -> "Instance":
        return Instance(
            pi={c: set(oids) for c, oids in self.pi.items()},
            nu=dict(self.nu),
            rho={a: set(ts) for a, ts in self.rho.items()},
        )

    def fact_count(self) -> int:
        return sum(len(v) for v in self.pi.values()) + sum(
            len(v) for v in self.rho.values()
        )

    # ------------------------------------------------------------------
    # validation (Definition 4 + Section 2.1 referential constraints)
    # ------------------------------------------------------------------
    def validate(self, schema: "Schema") -> None:
        self._validate_pi(schema)
        self._validate_nu(schema)
        self._validate_rho(schema)

    def _validate_pi(self, schema: "Schema") -> None:
        for c in self.pi:
            if not schema.is_class(c):
                raise OidError(f"pi assigns oids to non-class {c!r}")
        # (a) C isa C'  =>  pi(C) ⊆ pi(C')
        for c, oids in self.pi.items():
            for sup in schema.superclasses(c):
                missing = oids - self.pi.get(sup, set())
                if missing:
                    raise OidError(
                        f"oids {sorted(o.number for o in missing)} are in"
                        f" {c!r} but not in its superclass {sup!r}"
                    )
        # (b) oids shared only within one generalization hierarchy
        owner: dict[Oid, str] = {}
        for c, oids in self.pi.items():
            root = schema.hierarchy_root(c)
            for oid in oids:
                if oid.is_nil:
                    raise OidError(f"nil oid appears in class {c!r}")
                prev = owner.setdefault(oid, root)
                if prev != root:
                    raise OidError(
                        f"oid {oid!r} appears in hierarchies {prev!r}"
                        f" and {root!r}; the oid universe must partition"
                    )

    def _validate_nu(self, schema: "Schema") -> None:
        known = self.all_oids()
        for oid in self.nu:
            if oid not in known:
                raise OidError(
                    f"o-value assigned to oid {oid!r} that no class contains"
                )
        for c, oids in self.pi.items():
            eff = schema.effective_type(c)
            for oid in oids:
                if oid not in self.nu:
                    raise OidError(
                        f"object {oid!r} of class {c!r} has no o-value"
                    )
                value = self.nu[oid].project(eff.labels)
                if not value_matches_type(
                    value, eff, schema, self.pi, allow_nil=True
                ):
                    raise ValueError_(
                        f"o-value {self.nu[oid]!r} of {oid!r} does not"
                        f" match type {eff!r} of class {c!r}"
                    )
                self._check_references(value, eff, schema, where=f"class {c!r}")

    def _validate_rho(self, schema: "Schema") -> None:
        for a, tuples in self.rho.items():
            if not schema.is_association(a):
                raise ValueError_(
                    f"rho assigns tuples to non-association {a!r}"
                )
            eff = schema.effective_type(a)
            for t in tuples:
                if not value_matches_type(
                    t, eff, schema, self.pi, allow_nil=False
                ):
                    raise ValueError_(
                        f"tuple {t!r} does not match type {eff!r} of"
                        f" association {a!r} (nil references are illegal"
                        " in associations)"
                    )

    def _check_references(
        self, value: Value, descriptor, schema: "Schema", where: str
    ) -> None:
        """Recursively check that class references are resolvable or nil."""
        if isinstance(descriptor, NamedType):
            if schema.is_class(descriptor.name):
                assert isinstance(value, Oid)
                if not value.is_nil and value not in self.pi.get(
                    descriptor.name.lower(), set()
                ):
                    raise OidError(
                        f"dangling reference {value!r} to class"
                        f" {descriptor.name!r} in {where}"
                    )
                return
            if schema.is_domain(descriptor.name):
                self._check_references(
                    value, schema.rhs_of(descriptor.name), schema, where
                )
                return
            self._check_references(
                value, schema.effective_type(descriptor.name), schema, where
            )
            return
        if isinstance(descriptor, TupleType):
            assert isinstance(value, TupleValue)
            for f in descriptor.fields:
                if f.label in value:
                    self._check_references(
                        value[f.label], f.type, schema, where
                    )
            return
        element = getattr(descriptor, "element", None)
        if element is not None:
            assert isinstance(
                value, (SetValue, MultisetValue, SequenceValue)
            )
            for v in value:
                self._check_references(v, element, schema, where)

    # ------------------------------------------------------------------
    # comparison up to oid renaming (determinacy, Appendix B)
    # ------------------------------------------------------------------
    def isomorphic_to(self, other: "Instance") -> bool:
        """True iff the instances differ only by a renaming of oids.

        Implements the paper's determinacy notion: LOGRES programs define
        partial functions *up to renaming of oids*.  Checked by canonical
        relabeling: oids are renamed in a deterministic order derived from
        the value structure, then compared for equality.
        """
        return _canonical_form(self) == _canonical_form(other)


def _canonical_form(inst: Instance):
    """A renaming-invariant canonical encoding of an instance.

    Iteratively refines an oid partition (colour refinement over the
    object graph), then replaces each oid by its final colour.  Colour
    refinement is a sound and, for the acyclic/sparse instances LOGRES
    programs build, complete isomorphism invariant; ties are broken by the
    full encoded neighbourhood so distinct structures never collide.
    """
    # initial colour: the multiset of classes containing the oid
    colour: dict[Oid, tuple] = {}
    membership: dict[Oid, tuple] = {}
    for c in sorted(inst.pi):
        for oid in inst.pi[c]:
            membership.setdefault(oid, ())
            membership[oid] = membership[oid] + (c,)
    for oid, classes in membership.items():
        colour[oid] = (classes,)

    def encode(value, depth: int, owner: Oid | None = None):
        if isinstance(value, Oid):
            if value.is_nil:
                return ("nil",)
            if owner is not None and value == owner:
                # self-references are structural (distinguishes a k-cycle
                # from self-loops, which plain colour refinement cannot)
                return ("selfref",)
            if depth <= 0:
                return ("oid", colour.get(value, ("?",)))
            return ("oid", colour.get(value, ("?",)),
                    encode(inst.nu.get(value, TupleValue()), depth - 1,
                           value))
        if isinstance(value, TupleValue):
            return ("t",) + tuple(
                (k, encode(v, depth, owner)) for k, v in value.items
            )
        if isinstance(value, SetValue):
            return ("s",) + tuple(sorted(map(repr, (
                encode(v, depth, owner) for v in value))))
        if isinstance(value, MultisetValue):
            return ("m",) + tuple(sorted(
                (repr(encode(v, depth, owner)), n)
                for v, n in value.counts))
        if isinstance(value, SequenceValue):
            return ("q",) + tuple(encode(v, depth, owner) for v in value)
        return ("c", value)

    # refine colours to a fixpoint (bounded by the number of oids)
    for _ in range(max(1, len(colour))):
        new_colour = {
            oid: (membership.get(oid, ()),
                  encode(inst.nu.get(oid, TupleValue()), 1, oid))
            for oid in colour
        }
        if new_colour == colour:
            break
        colour = new_colour

    pi_enc = {
        c: tuple(sorted(repr(colour[o]) for o in oids))
        for c, oids in inst.pi.items() if oids
    }
    rho_enc = {
        a: tuple(sorted(repr(encode(t, 3)) for t in ts))
        for a, ts in inst.rho.items() if ts
    }
    return (tuple(sorted(pi_enc.items())), tuple(sorted(rho_enc.items())))
