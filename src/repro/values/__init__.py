"""LOGRES value model: object identifiers, complex values, instances.

Implements Appendix A, Definitions 3-4: the countable oid universe, the
``nil`` oid, tuple / set / multiset / sequence values, the interpretation
``[τ]π`` of a type under an oid assignment, and database instances
``(π, ν, ρ)``.
"""

from repro.values.oids import NIL, Oid, OidGenerator
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
    value_repr,
)
from repro.values.typing import value_matches_type
from repro.values.instance import Instance

__all__ = [
    "Instance",
    "MultisetValue",
    "NIL",
    "Oid",
    "OidGenerator",
    "SequenceValue",
    "SetValue",
    "TupleValue",
    "Value",
    "value_matches_type",
    "value_repr",
]
