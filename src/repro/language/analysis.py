"""Static analysis of LOGRES programs (Section 3.1).

Runs at "compilation time", before any evaluation:

* **resolution** — positional arguments are matched to the predicate's
  effective fields (all-positional literals with matching arity) or
  recognized as the tuple variable; data-function sugar
  (``member(X, f(Y))`` literals and heads) is rewritten onto the hidden
  backing association ``__fn_f``;
* **safety** — every head argument other than an unbound head oid variable
  must be bound by the body; built-in variables must be groundable;
  variables occurring only in negated literals are marked as ranging over
  the active domain of their type; argument-less literals over non-0-ary
  predicates are rejected;
* **typing** — variables receive types from the labeled positions they
  occupy; unification between incompatible types is a compile-time error,
  as is ``C1(X) <- C2(X)`` for classes of different generalization
  hierarchies (two objects cannot share an oid across hierarchies);
* **stratification** — strata with respect to negation and data-function
  reads, used by the stratified (perfect-model) semantics.

Every check reports through :mod:`repro.analysis.diagnostics`: called
without a ``sink`` the first error raises the legacy exception
(:class:`~repro.errors.TypingError` and friends — fail-fast API), while
passing a :class:`repro.analysis.Collector` switches to collect-all mode,
in which analysis records each diagnostic and keeps going wherever
recovery is possible.  ``repro lint`` builds on the collect-all mode via
:mod:`repro.analysis.driver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import strongly_connected_components
from repro.analysis.diagnostics import (
    Collector,
    Related,
    emit_or_raise,
)
from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    CollectionTerm,
    Constant,
    FunctionApp,
    FunctionHead,
    Goal,
    Literal,
    Pattern,
    Program,
    Rule,
    Term,
    Var,
)
from repro.language.builtins import NON_BINDING, RESULT_LAST
from repro.span import Span
from repro.types.descriptors import (
    NamedType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import Kind, TypeEquation
from repro.types.refinement import types_compatible
from repro.types.schema import Schema

FUNCTION_VALUE_LABEL = "value"


def _span_of(node) -> Span | None:
    return getattr(node, "span", None)


# ---------------------------------------------------------------------------
# derived schema with data-function backing associations
# ---------------------------------------------------------------------------
def schema_with_functions(schema: Schema) -> Schema:
    """Extend ``schema`` with one hidden association per data function.

    ``F: (t1, ..., tk) -> {t}`` gets the backing association
    ``__fn_f = (arg0: t1, ..., argk-1: tk, value: t)``.
    """
    if not schema.functions:
        return schema
    equations = dict(schema.equations)
    for decl in schema.functions.values():
        fields = [
            TupleField(label, t)
            for label, t in zip(decl.arg_labels, decl.arg_types)
        ]
        fields.append(TupleField(FUNCTION_VALUE_LABEL, decl.element_type))
        equations[decl.backing_predicate()] = TypeEquation(
            decl.backing_predicate(), Kind.ASSOCIATION,
            TupleType(tuple(fields)),
        )
    return Schema(equations, schema.isa_declarations, dict(schema.functions))


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------
def resolve_literal(
    literal: Literal, schema: Schema, sink: Collector | None = None,
) -> Literal:
    """Resolve positional arguments of one literal against the schema.

    In collect-all mode an unresolvable literal is reported and returned
    unchanged, so the caller can continue with the rest of the rule.
    """
    args = literal.args
    if not args.positional:
        return literal
    span = _span_of(literal)
    if not schema.has(literal.pred):
        emit_or_raise(sink, "LG201",
                      f"unknown predicate {literal.pred!r}", span)
        return literal
    fields = schema.effective_type(literal.pred).fields
    bare = list(args.positional)
    if (
        not args.labeled
        and args.self_term is None
        and args.tuple_var is None
        and len(bare) == len(fields)
        and not (len(bare) == 1 and isinstance(bare[0], Var)
                 and len(fields) > 1)
    ):
        labeled = tuple(
            (f.label, term) for f, term in zip(fields, bare)
        )
        return Literal(literal.pred, Args(labeled=labeled),
                       literal.negated, span=span)
    if len(bare) == 1 and isinstance(bare[0], Var):
        return Literal(
            literal.pred,
            Args(
                labeled=args.labeled,
                self_term=args.self_term,
                tuple_var=bare[0],
            ),
            literal.negated,
            span=span,
        )
    emit_or_raise(
        sink, "LG202",
        f"cannot resolve unlabeled arguments of {literal!r}: use labels,"
        f" or supply exactly {len(fields)} positional terms",
        span,
    )
    return literal


def _rewrite_member(
    blit: BuiltinLiteral, schema: Schema, sink: Collector | None = None,
) -> Literal | None:
    """``member(X, f(Y))`` over a declared function -> ``__fn_f`` literal."""
    if blit.name != "member" or len(blit.args) != 2:
        return None
    element, target = blit.args
    if not isinstance(target, FunctionApp):
        return None
    decl = schema.functions.get(target.name)
    if decl is None:
        return None
    if len(target.args) != decl.arity:
        emit_or_raise(
            sink, "LG203",
            f"function {decl.name!r} takes {decl.arity} arguments,"
            f" got {len(target.args)}",
            _span_of(blit),
        )
        return None
    labeled = tuple(zip(decl.arg_labels, target.args)) + (
        (FUNCTION_VALUE_LABEL, element),
    )
    return Literal(decl.backing_predicate(), Args(labeled=labeled),
                   blit.negated, span=_span_of(blit))


def _check_function_apps(
    term: Term, schema: Schema, sink: Collector | None = None,
    span: Span | None = None,
) -> None:
    """Every FunctionApp must name a declared data function."""
    if isinstance(term, FunctionApp):
        decl = schema.functions.get(term.name)
        if decl is None:
            emit_or_raise(
                sink, "LG204",
                f"unknown data function or unquoted constant:"
                f" {term.name!r}",
                span,
            )
            return
        if len(term.args) != decl.arity:
            emit_or_raise(
                sink, "LG203",
                f"function {term.name!r} takes {decl.arity} arguments,"
                f" got {len(term.args)}",
                span,
            )
        for a in term.args:
            _check_function_apps(a, schema, sink, span)
    elif isinstance(term, ArithExpr):
        _check_function_apps(term.left, schema, sink, span)
        _check_function_apps(term.right, schema, sink, span)
    elif isinstance(term, CollectionTerm):
        for e in term.elements:
            _check_function_apps(e, schema, sink, span)
    elif isinstance(term, Pattern):
        for _, t in term.args.labeled:
            _check_function_apps(t, schema, sink, span)


def resolve_rule(
    rule: Rule, schema: Schema, sink: Collector | None = None,
) -> Rule:
    """Resolve positionals and rewrite data-function sugar in one rule."""
    head = rule.head
    if isinstance(head, FunctionHead):
        hspan = _span_of(head) or _span_of(rule)
        decl = schema.functions.get(head.function)
        if decl is None:
            emit_or_raise(
                sink, "LG204",
                f"unknown data function {head.function!r}", hspan,
            )
            head = None
        elif len(head.args) != decl.arity:
            emit_or_raise(
                sink, "LG203",
                f"function {head.function!r} takes {decl.arity} arguments,"
                f" got {len(head.args)}",
                hspan,
            )
            head = None
        else:
            labeled = tuple(zip(decl.arg_labels, head.args)) + (
                (FUNCTION_VALUE_LABEL, head.element),
            )
            head = Literal(decl.backing_predicate(),
                           Args(labeled=labeled), head.negated, span=hspan)
    elif isinstance(head, Literal):
        head = resolve_literal(head, schema, sink)

    body: list = []
    for blit in rule.body:
        if isinstance(blit, Literal):
            body.append(resolve_literal(blit, schema, sink))
        else:
            rewritten = _rewrite_member(blit, schema, sink)
            if rewritten is not None:
                body.append(rewritten)
            else:
                for t in blit.args:
                    _check_function_apps(t, schema, sink, _span_of(blit))
                body.append(blit)
    return Rule(head, tuple(body), rule.name, span=_span_of(rule))


def resolve_goal(
    goal: Goal, schema: Schema, sink: Collector | None = None,
) -> Goal:
    out = []
    for blit in goal.literals:
        if isinstance(blit, Literal):
            out.append(resolve_literal(blit, schema, sink))
        else:
            rewritten = _rewrite_member(blit, schema, sink)
            out.append(rewritten if rewritten is not None else blit)
    return Goal(tuple(out), span=_span_of(goal))


# ---------------------------------------------------------------------------
# variable typing
# ---------------------------------------------------------------------------
@dataclass
class VarInfo:
    """Inferred information about one rule variable."""

    types: list[TypeDescriptor] = field(default_factory=list)
    #: class names where the variable appears as an oid/tuple variable
    #: in the BODY (it then carries an oid)
    classes: list[str] = field(default_factory=list)
    #: class names where it is the head's oid/tuple variable; a head
    #: tuple variable may be fed by a plain association tuple (the
    #: paper's ``ip(C) <- pair(C)``), in which case an oid is invented
    head_classes: list[str] = field(default_factory=list)
    #: association names where it is the tuple variable
    assoc_tuples: list[str] = field(default_factory=list)


def _record_term(
    term: Term, expected: TypeDescriptor, schema: Schema,
    info: dict[Var, VarInfo], sink: Collector | None = None,
    span: Span | None = None,
) -> None:
    if isinstance(term, Var):
        entry = info.setdefault(term, VarInfo())
        entry.types.append(expected)
        if isinstance(expected, NamedType) and schema.is_class(expected.name):
            entry.classes.append(expected.name.lower())
        return
    if isinstance(term, Pattern):
        # pattern over a tuple-typed or class-typed component
        target = expected
        if isinstance(target, NamedType):
            if schema.is_class(target.name):
                _record_args(term.args, target.name, schema, info,
                             sink=sink, span=span)
                return
            if schema.is_domain(target.name):
                target = schema.rhs_of(target.name)
        if isinstance(target, TupleType):
            for label, sub in term.args.labeled:
                if not target.has_label(label):
                    emit_or_raise(
                        sink, "LG301",
                        f"pattern component {label!r} not in type"
                        f" {target!r}",
                        span,
                    )
                    continue
                _record_term(sub, target.field(label).type, schema, info,
                             sink, span)
            if term.args.self_term is not None:
                emit_or_raise(
                    sink, "LG302",
                    "self is only legal in patterns over class components",
                    span,
                )
        return
    if isinstance(term, Constant):
        # "constants are labeled by their type name ... type checking may
        # be done at compilation time" (Section 3.1)
        from repro.values.typing import value_matches_type

        if not value_matches_type(term.value, expected, schema):
            emit_or_raise(
                sink, "LG303",
                f"constant {term!r} does not belong to type {expected!r}",
                span,
            )
        return
    # arithmetic / collection / function-app: element types handled at
    # evaluation; nothing to record against the expected type here.


def _record_args(
    args: Args, pred: str, schema: Schema, info: dict[Var, VarInfo],
    in_head: bool = False, sink: Collector | None = None,
    span: Span | None = None,
) -> None:
    eff = schema.effective_type(pred)
    is_class = schema.is_class(pred)
    for label, term in args.labeled:
        if not eff.has_label(label):
            emit_or_raise(
                sink, "LG301",
                f"predicate {pred!r} has no argument labeled {label!r}",
                span,
            )
            continue
        _record_term(term, eff.field(label).type, schema, info, sink, span)
    if args.self_term is not None:
        if not is_class:
            emit_or_raise(
                sink, "LG302",
                f"self argument on non-class predicate {pred!r}", span,
            )
        elif isinstance(args.self_term, Var):
            entry = info.setdefault(args.self_term, VarInfo())
            (entry.head_classes if in_head else entry.classes).append(
                pred.lower()
            )
            if not in_head:
                entry.types.append(NamedType(pred.lower()))
    if args.tuple_var is not None:
        entry = info.setdefault(args.tuple_var, VarInfo())
        if is_class:
            (entry.head_classes if in_head else entry.classes).append(
                pred.lower()
            )
            if not in_head:
                entry.types.append(NamedType(pred.lower()))
        else:
            entry.assoc_tuples.append(pred.lower())
            entry.types.append(eff)


def infer_variable_types(
    rule: Rule, schema: Schema, sink: Collector | None = None,
) -> dict[Var, VarInfo]:
    """Collect per-variable type evidence from every ordinary literal."""
    info: dict[Var, VarInfo] = {}
    for lit in rule.body:
        if not isinstance(lit, Literal):
            continue
        if not schema.has(lit.pred):
            emit_or_raise(sink, "LG201",
                          f"unknown predicate {lit.pred!r}",
                          _span_of(lit) or _span_of(rule))
            continue
        _record_args(lit.args, lit.pred, schema, info, sink=sink,
                     span=_span_of(lit) or _span_of(rule))
    if isinstance(rule.head, Literal):
        if not schema.has(rule.head.pred):
            emit_or_raise(sink, "LG201",
                          f"unknown predicate {rule.head.pred!r}",
                          _span_of(rule.head) or _span_of(rule))
        else:
            _record_args(rule.head.args, rule.head.pred, schema, info,
                         in_head=True, sink=sink,
                         span=_span_of(rule.head) or _span_of(rule))
    return info


def check_types(
    rule: Rule, schema: Schema, sink: Collector | None = None,
) -> dict[Var, VarInfo]:
    """Verify unification compatibility of every variable's occurrences."""
    info = infer_variable_types(rule, schema, sink)
    span = _span_of(rule)
    for var, entry in info.items():
        # class occurrences must share a generalization hierarchy; head
        # classes only constrain the variable if the body binds it to an
        # object (otherwise the head invents / copies attributes)
        constraining = list(entry.classes)
        if entry.classes:
            constraining += entry.head_classes
        roots = {schema.hierarchy_root(c) for c in constraining}
        if len(roots) > 1:
            emit_or_raise(
                sink, "LG306",
                f"variable {var!r} in rule {rule!r} ranges over classes of"
                f" different hierarchies {sorted(roots)}; objects of"
                " distinct hierarchies can never share an oid",
                span,
            )
        # pairwise compatibility of non-class types
        plain = [
            t for t in entry.types
            if not (isinstance(t, NamedType) and schema.is_class(t.name))
        ]
        for i in range(len(plain)):
            for j in range(i + 1, len(plain)):
                if not types_compatible(plain[i], plain[j], schema):
                    emit_or_raise(
                        sink, "LG304",
                        f"variable {var!r} used at incompatible types"
                        f" {plain[i]!r} and {plain[j]!r} in rule {rule!r}",
                        span,
                    )
        if entry.classes and plain:
            emit_or_raise(
                sink, "LG305",
                f"variable {var!r} is used both as an object of class"
                f" {entry.classes[0]!r} and at value type {plain[0]!r}",
                span,
            )
    _check_head_oid_legality(rule, schema, info, sink)
    return info


def _check_head_oid_legality(
    rule: Rule, schema: Schema, info: dict[Var, VarInfo],
    sink: Collector | None = None,
) -> None:
    """Section 3.1: ``C1(X) <- C2(X)`` legality across hierarchies is
    already excluded by the shared-root check; here we validate that a
    *bound* head oid/tuple variable of a class head actually carries an
    oid (comes from a class position)."""
    head = rule.head
    if not isinstance(head, Literal) or not schema.is_class(head.pred):
        return
    body_vars = set(rule.body_variables())
    # a bound SELF variable must carry an oid; a bound tuple variable may
    # instead carry a plain tuple whose attributes are copied into a
    # freshly invented object (Example 3.4's ip(C) <- pair(C))
    var = head.args.self_term
    if isinstance(var, Var) and var in body_vars:
        entry = info.get(var)
        if entry is not None and not entry.classes:
            emit_or_raise(
                sink, "LG307",
                f"head variable {var!r} of class {head.pred!r} must be"
                " bound to an object (oid or tuple variable of a"
                " class), not a plain value",
                _span_of(head) or _span_of(rule),
            )


# ---------------------------------------------------------------------------
# safety
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SafetyReport:
    """Outcome of the safety check for one rule."""

    invents_oid: bool
    active_domain_vars: tuple[Var, ...]


def check_safety(
    rule: Rule, schema: Schema, sink: Collector | None = None,
) -> SafetyReport:
    """Enforce the safety requirements of Section 3.1."""
    # argument-less literals over predicates with arguments
    for lit in list(rule.body) + (
        [rule.head] if isinstance(rule.head, Literal) else []
    ):
        if isinstance(lit, Literal) and lit.args.is_empty:
            if schema.has(lit.pred) and schema.effective_type(
                lit.pred
            ).fields:
                emit_or_raise(
                    sink, "LG401",
                    f"literal {lit!r} has no arguments but predicate"
                    f" {lit.pred!r} has arguments",
                    _span_of(lit) or _span_of(rule),
                )

    bound: set[Var] = set()
    for lit in rule.body:
        if isinstance(lit, Literal) and not lit.negated:
            bound.update(lit.variables())

    # builtins can bind additional variables; iterate to a fixpoint
    builtins = [l for l in rule.body if isinstance(l, BuiltinLiteral)]
    changed = True
    while changed:
        changed = False
        for blit in builtins:
            if blit.negated:
                continue
            newly = _builtin_bindable(blit, bound)
            if newly - bound:
                bound |= newly
                changed = True

    # variables only in negated ordinary literals range over the active
    # domain of their type
    active_domain: list[Var] = []
    for lit in rule.body:
        if isinstance(lit, Literal) and lit.negated:
            for var in lit.variables():
                if var not in bound and var not in active_domain:
                    active_domain.append(var)

    # every builtin variable must be groundable
    for blit in builtins:
        for var in blit.variables():
            if var not in bound:
                emit_or_raise(
                    sink, "LG402",
                    f"variable {var!r} of builtin {blit!r} occurs in no"
                    " ordinary literal and cannot be bound",
                    _span_of(blit) or _span_of(rule),
                )

    # head safety
    invents = False
    head = rule.head
    if isinstance(head, Literal):
        head_bound = bound | set(active_domain)
        self_term = head.args.self_term
        for var in head.variables():
            if var in head_bound:
                continue
            if var == self_term and schema.is_class(head.pred) and \
                    not head.negated:
                invents = True  # Section 3.1 safety rule (1)
                continue
            if var == head.args.tuple_var and schema.is_class(head.pred) \
                    and not head.negated and self_term is None:
                invents = True
                continue
            emit_or_raise(
                sink, "LG403",
                f"head variable {var!r} of rule {rule!r} is not bound by"
                " the body",
                _span_of(head) or _span_of(rule),
            )
        if schema.is_class(head.pred) and not head.negated and \
                self_term is None and head.args.tuple_var is None:
            # class head with no oid variable at all: a fresh object is
            # invented per derivation (existential quantification)
            invents = True
    return SafetyReport(invents, tuple(active_domain))


def _builtin_bindable(blit: BuiltinLiteral, bound: set[Var]) -> set[Var]:
    """Variables that ``blit`` can bind given already-bound variables."""
    def term_bound(t: Term) -> bool:
        return all(v in bound for v in t.variables())

    name = blit.name
    out = set(bound)
    if name == "=" and len(blit.args) == 2:
        left, right = blit.args
        if term_bound(left) and isinstance(right, Var):
            out.add(right)
        elif term_bound(right) and isinstance(left, Var):
            out.add(left)
        return out
    if name == "member" and len(blit.args) == 2:
        element, coll = blit.args
        if term_bound(coll) and isinstance(element, Var):
            out.add(element)
        return out
    if name in RESULT_LAST and blit.args:
        *inputs, result = blit.args
        if all(term_bound(t) for t in inputs) and isinstance(result, Var):
            out.add(result)
        return out
    if name in NON_BINDING:
        return out
    return out


# ---------------------------------------------------------------------------
# stratification
# ---------------------------------------------------------------------------
def _head_pred(rule: Rule) -> str | None:
    if isinstance(rule.head, Literal):
        return rule.head.pred
    return None


def _function_reads(rule: Rule) -> tuple[set[str], set[str]]:
    """Backing predicates this rule reads: (element-wise, whole-set).

    Element-wise reads are monotone and do not constrain stratification:
    the paper's Example 3.2 recursively defines ``desc`` with
    ``member(X, T), T = desc(Z)``, which only ever looks at individual
    elements.  A read is *nesting* (stratification-relevant) when the set
    value can be observed as a whole — it flows into the head, into an
    aggregate builtin (count, sum, ...), or into an equality whose bound
    variable is used outside ``member`` collection positions.
    """
    positive: set[str] = set()
    preds: set[str] = set()
    head_vars = set(rule.head_variables())

    def scan(term: Term) -> None:
        if isinstance(term, FunctionApp):
            preds.add(f"__fn_{term.name}")
            for a in term.args:
                scan(a)
        elif isinstance(term, ArithExpr):
            scan(term.left)
            scan(term.right)
        elif isinstance(term, CollectionTerm):
            for e in term.elements:
                scan(e)

    def var_used_only_as_member_collection(var: Var) -> bool:
        for blit in rule.body:
            if isinstance(blit, BuiltinLiteral):
                if blit.name == "member" and len(blit.args) == 2:
                    element, coll = blit.args
                    if var in element.variables():
                        return False
                    continue  # var as the collection of member is fine
                if blit.name == "=" and len(blit.args) == 2:
                    left, right = blit.args
                    if isinstance(left, Var) and left == var and isinstance(
                        right, FunctionApp
                    ):
                        continue  # the defining assignment itself
                    if isinstance(right, Var) and right == var and isinstance(
                        left, FunctionApp
                    ):
                        continue
                if var in [v for v in blit.variables()]:
                    return False
            elif var in [v for v in blit.variables()]:
                return False
        return var not in head_vars

    for blit in rule.body:
        if not isinstance(blit, BuiltinLiteral):
            continue
        if blit.name == "=" and len(blit.args) == 2:
            left, right = blit.args
            app, var = None, None
            if isinstance(left, Var) and isinstance(right, FunctionApp):
                var, app = left, right
            elif isinstance(right, Var) and isinstance(left, FunctionApp):
                var, app = right, left
            if app is not None and var is not None:
                for a in app.args:
                    scan(a)  # nested reads inside the arguments
                if var_used_only_as_member_collection(var):
                    positive.add(f"__fn_{app.name}")  # element-wise
                    continue
                preds.add(f"__fn_{app.name}")
                continue
        for t in blit.args:
            scan(t)
    if isinstance(rule.head, Literal):
        for _, t in rule.head.args.labeled:
            scan(t)
    return positive, preds


def stratify(
    program: Program, schema: Schema, sink: Collector | None = None,
) -> list[list[Rule]]:
    """Partition rules into strata w.r.t. negation and data functions.

    Raises :class:`~repro.errors.StratificationError` (or, in collect-all
    mode, emits one ``LG501`` diagnostic per offending dependency) if a
    predicate depends negatively — or through a data-function read — on
    itself, directly or transitively.  In collect-all mode the strata of
    the remaining dependencies are still returned, so downstream warning
    passes can run.
    """
    rules = list(program.rules)
    graph: dict[str, set[str]] = {}
    negative_edges: dict[tuple[str, str], Rule] = {}
    for rule in rules:
        head = _head_pred(rule)
        if head is None:
            continue
        graph.setdefault(head, set())
        for blit in rule.body:
            if isinstance(blit, Literal):
                graph[head].add(blit.pred)
                graph.setdefault(blit.pred, set())
                if blit.negated:
                    negative_edges.setdefault((head, blit.pred), rule)
        elementwise, wholeset = _function_reads(rule)
        for fpred in elementwise:
            graph[head].add(fpred)
            graph.setdefault(fpred, set())
        for fpred in wholeset:
            graph[head].add(fpred)
            graph.setdefault(fpred, set())
            negative_edges.setdefault((head, fpred), rule)
        if isinstance(rule.head, Literal) and rule.head.negated:
            # a deletion of p must see the final p of earlier strata
            for blit in rule.body:
                if isinstance(blit, Literal) and blit.pred != head:
                    negative_edges.setdefault((head, blit.pred), rule)

    components = strongly_connected_components(graph)
    comp_of: dict[str, int] = {}
    for idx, comp in enumerate(components):
        for pred in comp:
            comp_of[pred] = idx
    for (head, dep), rule in negative_edges.items():
        if comp_of.get(head) == comp_of.get(dep):
            emit_or_raise(
                sink, "LG501",
                f"predicate {head!r} depends on {dep!r} through negation,"
                " deletion, or a data-function read inside a recursive"
                " cycle; the program is not stratified",
                _span_of(rule),
            )
    # components are produced in reverse topological order: dependencies
    # first — which is exactly evaluation order.
    stratum_of_pred = {p: comp_of[p] for p in comp_of}
    strata: dict[int, list[Rule]] = {}
    for rule in rules:
        head = _head_pred(rule)
        idx = stratum_of_pred.get(head, len(components))
        strata.setdefault(idx, []).append(rule)
    return [strata[i] for i in sorted(strata)]


# ---------------------------------------------------------------------------
# whole-program analysis
# ---------------------------------------------------------------------------
@dataclass
class AnalyzedProgram:
    """A resolved, safety- and type-checked program, ready to evaluate."""

    schema: Schema           # extended with function backing associations
    rules: tuple[Rule, ...]  # resolved rules
    goal: Goal | None
    safety: dict[int, SafetyReport]  # by rule index
    has_negation: bool
    has_deletion: bool
    has_invention: bool
    #: indexes of rules with no error diagnostics; ``None`` in fail-fast
    #: mode, where reaching the result implies every rule is clean
    clean_indices: tuple[int, ...] | None = None

    def strata(self) -> list[list[Rule]]:
        return stratify(Program(self.rules, self.goal), self.schema)

    def clean_rules(self) -> list[tuple[int, Rule, SafetyReport]]:
        """(index, rule, safety report) of every error-free rule."""
        indices = (
            range(len(self.rules))
            if self.clean_indices is None else self.clean_indices
        )
        return [(i, self.rules[i], self.safety[i]) for i in indices]


def analyze_program(
    program: Program, schema: Schema, collector: Collector | None = None,
) -> AnalyzedProgram:
    """Resolve, type-check, and safety-check a program.

    Without a collector the first problem raises (fail-fast, the engine
    API).  With a collector every diagnostic of every rule is recorded
    and a best-effort :class:`AnalyzedProgram` is returned whose
    ``clean_indices`` names the rules that analyzed without errors —
    ``repro lint`` runs its warning passes over exactly those.
    """
    extended = schema_with_functions(schema)
    resolved: list[Rule] = []
    safety: dict[int, SafetyReport] = {}
    clean: list[int] = []
    has_negation = has_deletion = has_invention = False
    for idx, rule in enumerate(program.rules):
        before = len(collector.errors()) if collector is not None else 0
        r = resolve_rule(rule, extended, collector)
        check_types(r, extended, collector)
        report = check_safety(r, extended, collector)
        safety[idx] = report
        resolved.append(r)
        if collector is None or len(collector.errors()) == before:
            clean.append(idx)
            has_invention |= report.invents_oid
            has_negation |= any(l.negated for l in r.body)
            if isinstance(r.head, Literal) and r.head.negated:
                has_deletion = True
    goal = (
        resolve_goal(program.goal, extended, collector)
        if program.goal else None
    )
    return AnalyzedProgram(
        schema=extended,
        rules=tuple(resolved),
        goal=goal,
        safety=safety,
        has_negation=has_negation,
        has_deletion=has_deletion,
        has_invention=has_invention,
        clean_indices=tuple(clean) if collector is not None else None,
    )
