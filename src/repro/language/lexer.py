"""Tokenizer for LOGRES source text.

The concrete syntax is a regularized form of the paper's examples:

* section headers ``domains`` / ``classes`` / ``associations`` /
  ``functions`` / ``rules`` / ``goal`` (an optional trailing ``section``
  keyword and colon are accepted, matching the paper's layout);
* statements end with ``.``;
* ``%`` and ``#`` start comments running to end of line;
* identifiers starting with an uppercase letter are variables inside
  rules; every other identifier is a (case-insensitive) name;
* strings are double-quoted, numbers are integers or decimals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

# multi-character symbols first so maximal munch applies
SYMBOLS = [
    "<-", "?-", "->", "!=", "<=", ">=",
    "(", ")", "{", "}", "[", "]", "<", ">",
    ",", ".", ":", "=", "~", "+", "-", "*", "/",
]

KEYWORDS = {
    "domains", "domain", "classes", "class", "associations", "association",
    "functions", "function", "rules", "rule", "goal", "section",
    "isa", "self", "nil", "not", "true", "false",
}

#: keywords that occupy *term* positions: recognized only in exact
#: lowercase, so that ``Self``, ``True`` etc. remain usable as variables
TERM_KEYWORDS = {"self", "nil", "not", "true", "false"}


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'name', 'variable', 'number', 'string', 'symbol', 'keyword', 'eof'
    text: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> ParseError:
        return ParseError(msg, line, col)

    while i < n:
        ch = source[i]
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in "%#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if ch == '"':
            j = i + 1
            out = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    out.append({"n": "\n", "t": "\t", '"': '"',
                                "\\": "\\"}.get(esc, esc))
                    j += 2
                else:
                    out.append(source[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            text = source[i:j + 1]
            tokens.append(Token("string", text, "".join(out),
                                start_line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        if "0" <= ch <= "9":  # ASCII digits only: int('²') would raise
            j = i
            while j < n and "0" <= source[j] <= "9":
                j += 1
            is_float = False
            if j + 1 < n and source[j] == "." and \
                    "0" <= source[j + 1] <= "9":
                is_float = True
                j += 1
                while j < n and "0" <= source[j] <= "9":
                    j += 1
            text = source[i:j]
            value = float(text) if is_float else int(text)
            tokens.append(Token("number", text, value, start_line, start_col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_-"):
                # hyphens are allowed mid-identifier only between
                # alphanumerics (the paper writes H-TEAM); a hyphen
                # followed by a non-identifier char terminates the name.
                if source[j] == "-" and not (
                    j + 1 < n and (source[j + 1].isalnum()
                                   or source[j + 1] == "_")
                ):
                    break
                j += 1
            text = source[i:j]
            lowered = text.lower()
            canonical = lowered.replace("-", "_")
            if lowered in KEYWORDS and (
                lowered not in TERM_KEYWORDS or text == lowered
            ):
                kind = "keyword"
                value: object = lowered
            elif text[0].isupper() or text[0] == "_":
                # variable-shaped; schema sections reinterpret these as
                # (case-insensitive) type names, rules treat them as
                # variables.
                kind = "variable"
                value = text.replace("-", "_")
            else:
                kind = "name"
                value = canonical
            tokens.append(Token(kind, text, value, start_line, start_col))
            col += j - i
            i = j
            continue
        matched = None
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                matched = sym
                break
        if matched is None:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token("symbol", matched, matched, start_line, start_col))
        i += len(matched)
        col += len(matched)
    tokens.append(Token("eof", "", None, line, col))
    return tokens
