"""Rendering schemas and programs back to LOGRES source text.

Part of the "programming environment" direction of Section 5 (design,
debugging and monitoring tools).  The renderer is the inverse of the
parser on its canonical output: ``parse(render(x))`` reproduces ``x``
(property-tested), which makes rules and schemas round-trippable through
files and diffs.
"""

from __future__ import annotations

from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    CollectionTerm,
    Constant,
    FunctionApp,
    FunctionHead,
    Goal,
    Literal,
    Pattern,
    Program,
    Rule,
    Term,
    Var,
)
from repro.types.descriptors import (
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import Kind
from repro.types.schema import Schema
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.values.oids import Oid


# ---------------------------------------------------------------------------
# values and terms
# ---------------------------------------------------------------------------
def render_value(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, Oid):
        if value.is_nil:
            return "nil"
        raise ValueError(
            f"oid {value!r} has no source form: oids are system-managed"
            " and not visible to users (Section 2.1)"
        )
    if isinstance(value, TupleValue):
        inner = ", ".join(
            f"{k} {render_value(v)}" for k, v in value.items
        )
        return f"({inner})"
    if isinstance(value, SetValue):
        inner = ", ".join(sorted(render_value(v) for v in value))
        return f"{{{inner}}}"
    if isinstance(value, MultisetValue):
        inner = ", ".join(sorted(render_value(v) for v in value))
        return f"[{inner}]"
    if isinstance(value, SequenceValue):
        inner = ", ".join(render_value(v) for v in value)
        return f"<{inner}>"
    raise ValueError(f"cannot render value {value!r}")


def render_term(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Constant):
        return render_value(term.value)
    if isinstance(term, FunctionApp):
        if not term.args:
            return f"{term.name}()"
        inner = ", ".join(render_term(a) for a in term.args)
        return f"{term.name}({inner})"
    if isinstance(term, ArithExpr):
        return (
            f"({render_term(term.left)} {term.op}"
            f" {render_term(term.right)})"
        )
    if isinstance(term, CollectionTerm):
        open_, close = {
            "set": ("{", "}"), "multiset": ("[", "]"),
            "sequence": ("<", ">"),
        }[term.kind]
        inner = ", ".join(render_term(e) for e in term.elements)
        return f"{open_}{inner}{close}"
    if isinstance(term, Pattern):
        return f"({_render_args(term.args)})"
    raise ValueError(f"cannot render term {term!r}")


def _render_args(args: Args) -> str:
    parts = []
    if args.self_term is not None:
        parts.append(f"self {render_term(args.self_term)}")
    for label, term in args.labeled:
        if isinstance(term, Pattern):
            parts.append(f"{label}({_render_args(term.args)})")
        else:
            parts.append(f"{label} {render_term(term)}")
    if args.tuple_var is not None:
        parts.append(args.tuple_var.name)
    parts.extend(render_term(t) for t in args.positional)
    return ", ".join(parts)


# ---------------------------------------------------------------------------
# literals, rules, programs
# ---------------------------------------------------------------------------
def render_literal(literal: Literal | BuiltinLiteral) -> str:
    prefix = "~" if literal.negated else ""
    if isinstance(literal, Literal):
        if literal.args.is_empty:
            return f"{prefix}{literal.pred}"
        return f"{prefix}{literal.pred}({_render_args(literal.args)})"
    name = literal.name
    if name in ("=", "!=", "<", "<=", ">", ">=") and len(literal.args) == 2:
        left, right = literal.args
        return (
            f"{prefix}{render_term(left)} {name} {render_term(right)}"
        )
    inner = ", ".join(render_term(a) for a in literal.args)
    return f"{prefix}{name}({inner})"


def render_rule(rule: Rule) -> str:
    if isinstance(rule.head, FunctionHead):
        inner = ", ".join(render_term(a) for a in rule.head.args)
        head = (
            ("~" if rule.head.negated else "")
            + f"member({render_term(rule.head.element)},"
            f" {rule.head.function}({inner}))"
        )
    elif rule.head is not None:
        head = render_literal(rule.head)
    else:
        head = ""
    if not rule.body:
        return f"{head}."
    body = ", ".join(render_literal(l) for l in rule.body)
    if not head:
        return f"<- {body}."
    return f"{head} <- {body}."


def render_goal(goal: Goal) -> str:
    body = ", ".join(render_literal(l) for l in goal.literals)
    return f"?- {body}."


def render_program(program: Program) -> str:
    lines = ["rules"]
    lines += [f"  {render_rule(r)}" for r in program.rules]
    if program.goal is not None:
        lines.append("goal")
        lines.append(f"  {render_goal(program.goal)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# schemas
# ---------------------------------------------------------------------------
def render_type(descriptor: TypeDescriptor) -> str:
    if isinstance(descriptor, ElementaryType):
        return descriptor.name
    if isinstance(descriptor, NamedType):
        return descriptor.name
    if isinstance(descriptor, TupleType):
        inner = ", ".join(
            f"{f.label}: {render_type(f.type)}" for f in descriptor.fields
        )
        return f"({inner})"
    if isinstance(descriptor, SetType):
        return f"{{{render_type(descriptor.element)}}}"
    if isinstance(descriptor, MultisetType):
        return f"[{render_type(descriptor.element)}]"
    if isinstance(descriptor, SequenceType):
        return f"<{render_type(descriptor.element)}>"
    raise ValueError(f"cannot render type {descriptor!r}")


def render_schema(schema: Schema) -> str:
    """Full source of a schema, section by section."""
    sections: dict[Kind, list[str]] = {
        Kind.DOMAIN: [], Kind.CLASS: [], Kind.ASSOCIATION: [],
    }
    for eq in schema.equations.values():
        if eq.name.startswith("__fn_"):
            continue  # hidden data-function backing associations
        sections[eq.kind].append(
            f"  {eq.name} = {render_type(eq.rhs)}."
        )
    for decl in schema.isa_declarations:
        via = f" {decl.label}" if decl.label else ""
        sections[Kind.CLASS].append(f"  {decl.sub}{via} isa {decl.sup}.")
    lines: list[str] = []
    for kind, header in [
        (Kind.DOMAIN, "domains"),
        (Kind.CLASS, "classes"),
        (Kind.ASSOCIATION, "associations"),
    ]:
        if sections[kind]:
            lines.append(header)
            lines.extend(sections[kind])
    if schema.functions:
        lines.append("functions")
        for decl in schema.functions.values():
            if decl.arity == 0:
                signature = f"  {decl.name} -> {render_type(decl.result)}."
            else:
                args = ", ".join(render_type(t) for t in decl.arg_types)
                signature = (
                    f"  {decl.name}: ({args}) ->"
                    f" {render_type(decl.result)}."
                )
            lines.append(signature)
    return "\n".join(lines)


def render_source(schema: Schema, program: Program | None = None) -> str:
    """A complete source unit: schema sections plus rules and goal."""
    parts = [render_schema(schema)]
    if program is not None and (program.rules or program.goal):
        parts.append(render_program(program))
    return "\n".join(p for p in parts if p)
