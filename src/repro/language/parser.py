"""Recursive-descent parser for LOGRES source text.

A source unit is a sequence of sections::

    domains
      name = string.
      score = (integer, integer).
    classes
      person = (name, address: string).
      student = (person, school: string).
      student isa person.
    associations
      advises = (professor, student).
    functions
      desc: person -> {person}.
      member(X, desc(Y)) <- parent(par Y, chil X).
    rules
      ancestor(anc X, des Y) <- parent(par X), Y = desc(X).
    goal
      ?- ancestor(anc X).

Conventions (regularized from the paper's informal examples):

* type, predicate, label and function names are case-insensitive
  (normalized to lowercase); hyphens in names become underscores;
* inside rules, identifiers starting with an uppercase letter or ``_``
  are variables; string constants are double-quoted;
* ``~`` (or ``not``) negates a literal; a negated head is a deletion;
* a headless rule ``<- body.`` is a passive constraint (denial);
* built-ins put their result last: ``union(X, Y, Z)`` means ``Z = X ∪ Y``;
* unlabeled components of a tuple type take their type's name as label
  (duplicates get ``_2``, ``_3``, ... suffixes, the paper's "labelling
  mechanism" applied automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    Constant,
    FunctionApp,
    FunctionHead,
    Goal,
    Literal,
    Pattern,
    Program,
    Rule,
    Term,
    Var,
)
from repro.language.builtins import is_builtin
from repro.language.lexer import Token, tokenize
from repro.span import Span
from repro.types.descriptors import (
    ELEMENTARY_TYPES,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import (
    FunctionDecl,
    IsaDeclaration,
    Kind,
    TypeEquation,
)
from repro.types.schema import Schema
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
)
from repro.values.oids import NIL

_SECTION_KINDS = {
    "domains": Kind.DOMAIN, "domain": Kind.DOMAIN,
    "classes": Kind.CLASS, "class": Kind.CLASS,
    "associations": Kind.ASSOCIATION, "association": Kind.ASSOCIATION,
}
_SECTION_HEADERS = set(_SECTION_KINDS) | {
    "functions", "function", "rules", "rule", "goal",
}
_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass
class ParsedUnit:
    """The outcome of parsing one source unit (schema fragment + program)."""

    equations: list[TypeEquation] = field(default_factory=list)
    isa: list[IsaDeclaration] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)
    goal: Goal | None = None

    def schema(self, base: Schema | None = None) -> Schema:
        """Build (and validate) the schema of this unit.

        ``base`` supplies surrounding definitions for fragments that
        reference pre-existing types (module type equations, Section 4.1).
        """
        equations = dict(base.equations) if base else {}
        for eq in self.equations:
            equations[eq.name] = eq
        isa = list(base.isa_declarations) if base else []
        for decl in self.isa:
            if decl not in isa:
                isa.append(decl)
        functions = dict(base.functions) if base else {}
        for f in self.functions:
            functions[f.name] = f
        return Schema(equations, tuple(isa), functions)

    def program(self) -> Program:
        return Program(tuple(self.rules), self.goal)

    @property
    def has_schema_items(self) -> bool:
        return bool(self.equations or self.isa or self.functions)


def parse_source(text: str) -> ParsedUnit:
    """Parse a full LOGRES source unit."""
    return _Parser(text).parse_unit()


def parse_schema_source(text: str, base: Schema | None = None) -> Schema:
    """Parse source text and return its validated schema."""
    return parse_source(text).schema(base)


def parse_program(text: str) -> Program:
    """Parse rule/goal text; a missing section header defaults to rules."""
    parser = _Parser(text)
    unit = parser.parse_unit(default_section="rules")
    return unit.program()


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self._anon = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message: str, tok: Token | None = None) -> ParseError:
        tok = tok or self.peek()
        return ParseError(message, tok.line, tok.column)

    def expect_symbol(self, sym: str) -> Token:
        tok = self.peek()
        if tok.kind == "symbol" and tok.value == sym:
            return self.advance()
        raise self.error(f"expected {sym!r}, found {tok.text!r}")

    def accept_symbol(self, sym: str) -> bool:
        tok = self.peek()
        if tok.kind == "symbol" and tok.value == sym:
            self.advance()
            return True
        return False

    def accept_keyword(self, kw: str) -> bool:
        tok = self.peek()
        if tok.kind == "keyword" and tok.value == kw:
            self.advance()
            return True
        return False

    def at_keyword(self, *kws: str) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in kws

    def take_name(self, what: str = "name") -> str:
        """A name token; variable-shaped identifiers are accepted and
        lowercased (schema sections are case-insensitive)."""
        tok = self.peek()
        if tok.kind in ("name", "variable"):
            self.advance()
            return str(tok.value).lower()
        raise self.error(f"expected {what}, found {tok.text!r}")

    def fresh_var(self) -> Var:
        self._anon += 1
        return Var(f"_G{self._anon}")

    def span(self, tok: Token | None = None) -> Span:
        """The source location of ``tok`` (default: the current token)."""
        tok = tok or self.peek()
        return Span(tok.line, tok.column)

    # ------------------------------------------------------------------
    # unit & sections
    # ------------------------------------------------------------------
    def parse_unit(self, default_section: str | None = None) -> ParsedUnit:
        unit = ParsedUnit()
        section = default_section
        while self.peek().kind != "eof":
            if self.at_keyword(*_SECTION_HEADERS):
                section = self.advance().value
                self.accept_keyword("section")
                self.accept_symbol(":")
                continue
            if section is None:
                raise self.error(
                    "expected a section header (domains / classes /"
                    " associations / functions / rules / goal)"
                )
            if section in _SECTION_KINDS:
                self.parse_schema_statement(unit, _SECTION_KINDS[section])
            elif section in ("functions", "function"):
                self.parse_function_statement(unit)
            elif section in ("rules", "rule"):
                unit.rules.append(self.parse_rule())
            else:  # goal
                if unit.goal is not None:
                    raise self.error("multiple goals in one unit")
                unit.goal = self.parse_goal()
        return unit

    # ------------------------------------------------------------------
    # schema statements
    # ------------------------------------------------------------------
    def parse_schema_statement(self, unit: ParsedUnit, kind: Kind) -> None:
        span = self.span()
        name = self.take_name("type name")
        tok = self.peek()
        if tok.kind == "keyword" and tok.value == "isa":
            self.advance()
            sup = self.take_name("superclass name")
            self.expect_symbol(".")
            unit.isa.append(IsaDeclaration(name, sup))
            return
        if tok.kind in ("name", "variable") and (
            self.peek(1).kind == "keyword" and self.peek(1).value == "isa"
        ):
            label = self.take_name("label")
            self.advance()  # isa
            sup = self.take_name("superclass name")
            self.expect_symbol(".")
            unit.isa.append(IsaDeclaration(name, sup, label))
            return
        self.expect_symbol("=")
        rhs = self.parse_type_expr()
        self.expect_symbol(".")
        unit.equations.append(TypeEquation(name, kind, rhs, span=span))

    def parse_type_expr(self) -> TypeDescriptor:
        tok = self.peek()
        if tok.kind == "symbol" and tok.value == "(":
            return self.parse_tuple_type()
        if tok.kind == "symbol" and tok.value in ("{", "[", "<"):
            closing = {"{": "}", "[": "]", "<": ">"}[tok.value]
            ctor = {"{": SetType, "[": MultisetType, "<": SequenceType}[
                tok.value
            ]
            self.advance()
            element = self.parse_type_expr()
            self.expect_symbol(closing)
            return ctor(element)
        name = self.take_name("type name")
        if name in ELEMENTARY_TYPES:
            return ELEMENTARY_TYPES[name]
        return NamedType(name)

    def parse_tuple_type(self) -> TupleType:
        self.expect_symbol("(")
        fields: list[TupleField] = []
        used: set[str] = set()
        if not self.accept_symbol(")"):
            while True:
                fields.append(self.parse_tuple_component(used))
                if self.accept_symbol(")"):
                    break
                self.expect_symbol(",")
        return TupleType(tuple(fields))

    def parse_tuple_component(self, used: set[str]) -> TupleField:
        tok = self.peek()
        if tok.kind in ("name", "variable"):
            nxt = self.peek(1)
            label_like = (
                (nxt.kind == "symbol" and nxt.value in (":", "(", "{", "[",
                                                        "<"))
                or nxt.kind in ("name", "variable")
            )
            if label_like:
                label = self.take_name("label")
                self.accept_symbol(":")
                t = self.parse_type_expr()
                if label in used:
                    raise self.error(f"duplicate label {label!r}")
                used.add(label)
                return TupleField(label, t)
            # unlabeled named component: label defaults to the type name
            t = self.parse_type_expr()
            base = t.name if isinstance(t, NamedType) else t.name  # type: ignore[attr-defined]
            label = base
            suffix = 2
            while label in used:
                label = f"{base}_{suffix}"
                suffix += 1
            used.add(label)
            return TupleField(label, t)
        raise self.error(
            "tuple components must be named types or 'label: type'"
        )

    # ------------------------------------------------------------------
    # function declarations
    # ------------------------------------------------------------------
    def parse_function_statement(self, unit: ParsedUnit) -> None:
        if self._statement_has_arrow():
            unit.functions.append(self.parse_function_decl())
        else:
            unit.rules.append(self.parse_rule())

    def _statement_has_arrow(self) -> bool:
        depth = 0
        offset = 0
        while True:
            tok = self.peek(offset)
            if tok.kind == "eof":
                return False
            if tok.kind == "symbol":
                if tok.value in ("(", "{", "["):
                    depth += 1
                elif tok.value in (")", "}", "]"):
                    depth -= 1
                elif tok.value == "->" and depth == 0:
                    return True
                elif tok.value in (".", "<-") and depth == 0:
                    return False
            offset += 1

    def parse_function_decl(self) -> FunctionDecl:
        name = self.take_name("function name")
        self.accept_symbol(":")
        arg_types: list[TypeDescriptor] = []
        tok = self.peek()
        if tok.kind == "symbol" and tok.value == "(":
            self.advance()
            if not self.accept_symbol(")"):
                while True:
                    arg_types.append(self.parse_type_expr())
                    if self.accept_symbol(")"):
                        break
                    self.expect_symbol(",")
        elif not (tok.kind == "symbol" and tok.value == "->"):
            arg_types.append(self.parse_type_expr())
        self.expect_symbol("->")
        result = self.parse_type_expr()
        self.expect_symbol(".")
        if not isinstance(result, SetType):
            raise self.error(
                f"data function {name!r} must return a set type"
            )
        labels = tuple(f"arg{i}" for i in range(len(arg_types)))
        return FunctionDecl(name, tuple(arg_types), result, labels)

    # ------------------------------------------------------------------
    # rules and goals
    # ------------------------------------------------------------------
    def parse_rule(self) -> Rule:
        span = self.span()
        if self.accept_symbol("<-"):
            body = self.parse_body()
            self.expect_symbol(".")
            return Rule(None, tuple(body), span=span)
        negated = self.accept_symbol("~") or self.accept_keyword("not")
        head = self.parse_head(negated)
        body: list = []
        if self.accept_symbol("<-") and not (
            self.peek().kind == "symbol" and self.peek().value == "."
        ):
            body = self.parse_body()
        self.expect_symbol(".")
        return Rule(head, tuple(body), span=span)

    def parse_head(self, negated: bool) -> Literal | FunctionHead:
        tok = self.peek()
        span = self.span(tok)
        if tok.kind != "name":
            raise self.error(
                f"rule head must start with a predicate name,"
                f" found {tok.text!r}"
            )
        name = str(tok.value)
        if name == "member":
            # member(Element, f(Args)) head defines a data function
            self.advance()
            self.expect_symbol("(")
            element = self.parse_term()
            self.expect_symbol(",")
            fn = self.parse_term()
            self.expect_symbol(")")
            if not isinstance(fn, FunctionApp):
                raise self.error(
                    "the second argument of a member(...) head must be a"
                    " data-function application"
                )
            return FunctionHead(fn.name, element, fn.args, negated,
                                span=span)
        # builtin names other than member are allowed as heads only when
        # they denote user predicates shadowing the builtin
        literal = self.parse_ordinary_literal(negated)
        return literal

    def parse_goal(self) -> Goal:
        span = self.span()
        self.accept_symbol("?-")
        body = self.parse_body()
        self.expect_symbol(".")
        return Goal(tuple(body), span=span)

    def parse_body(self) -> list:
        out = [self.parse_body_literal()]
        while self.accept_symbol(","):
            out.append(self.parse_body_literal())
        return out

    def parse_body_literal(self):
        negated = self.accept_symbol("~") or self.accept_keyword("not")
        tok = self.peek()
        span = self.span(tok)
        if tok.kind == "name":
            name = str(tok.value)
            nxt = self.peek(1)
            if is_builtin(name) and nxt.kind == "symbol" and nxt.value == "(":
                # a user predicate may shadow a builtin name (arity or
                # argument style decides); fall back to an ordinary literal
                checkpoint = self.pos
                try:
                    call = self.parse_builtin_call(negated)
                except ParseError:
                    self.pos = checkpoint
                else:
                    from repro.language.builtins import get_builtin

                    if len(call.args) == get_builtin(name).arity:
                        return call
                    self.pos = checkpoint
            if nxt.kind == "symbol" and nxt.value == "(":
                checkpoint = self.pos
                literal = self.parse_ordinary_literal(negated)
                after = self.peek()
                if (
                    after.kind == "symbol"
                    and after.value in _COMPARISONS
                    and not literal.args.labeled
                    and literal.args.self_term is None
                ):
                    # it was actually a term: f(X) = Y  (data function)
                    self.pos = checkpoint
                    return self.parse_comparison(negated)
                return literal
            # bare predicate (0-argument) or the left side of a comparison
            if nxt.kind == "symbol" and nxt.value in _COMPARISONS:
                return self.parse_comparison(negated)
            self.advance()
            return Literal(name, Args(), negated, span=span)
        return self.parse_comparison(negated)

    def parse_comparison(self, negated: bool) -> BuiltinLiteral:
        span = self.span()
        left = self.parse_term()
        tok = self.peek()
        if not (tok.kind == "symbol" and tok.value in _COMPARISONS):
            raise self.error(
                f"expected a comparison operator, found {tok.text!r}"
            )
        op = self.advance().value
        right = self.parse_term()
        return BuiltinLiteral(str(op), (left, right), negated, span=span)

    def parse_builtin_call(self, negated: bool) -> BuiltinLiteral:
        span = self.span()
        name = self.take_name("builtin name")
        self.expect_symbol("(")
        args: list[Term] = []
        if not self.accept_symbol(")"):
            while True:
                args.append(self.parse_term())
                if self.accept_symbol(")"):
                    break
                self.expect_symbol(",")
        return BuiltinLiteral(name, tuple(args), negated, span=span)

    def parse_ordinary_literal(self, negated: bool) -> Literal:
        span = self.span()
        name = self.take_name("predicate name")
        args = Args()
        if self.accept_symbol("("):
            args = self.parse_args()
            # closing ')' consumed by parse_args
        return Literal(name, args, negated, span=span)

    def parse_args(self) -> Args:
        """Parse literal arguments up to and including the closing ')'."""
        labeled: list[tuple[str, Term]] = []
        self_term: Term | None = None
        positional: list[Term] = []
        if self.accept_symbol(")"):
            return Args()
        while True:
            tok = self.peek()
            if tok.kind == "keyword" and tok.value == "self":
                self.advance()
                self.accept_symbol(":")
                if self_term is not None:
                    raise self.error("duplicate self argument")
                self_term = self.parse_term()
            elif tok.kind == "name" and not is_builtin(str(tok.value)):
                label = str(tok.value)
                nxt = self.peek(1)
                if nxt.kind == "symbol" and nxt.value == "(":
                    # nested pattern: label(args...)
                    self.advance()
                    self.advance()  # '('
                    inner = self.parse_args()
                    labeled.append((label, Pattern(inner)))
                elif nxt.kind == "symbol" and nxt.value == ":":
                    self.advance()
                    self.advance()
                    labeled.append((label, self.parse_term()))
                elif nxt.kind == "symbol" and nxt.value in (",", ")"):
                    raise self.error(
                        f"label {label!r} has no value; string constants"
                        " must be double-quoted"
                    )
                else:
                    self.advance()
                    labeled.append((label, self.parse_term()))
            else:
                positional.append(self.parse_term())
            if self.accept_symbol(")"):
                break
            self.expect_symbol(",")
        tuple_var = None
        if len(positional) == 1 and isinstance(positional[0], Var) and (
            labeled or self_term is not None
        ):
            # mixed labeled + one bare variable: unambiguously the tuple var
            tuple_var = positional[0]
            positional = []
        return Args(
            labeled=tuple(labeled),
            self_term=self_term,
            tuple_var=tuple_var,
            positional=tuple(positional),
        )

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------
    def parse_term(self) -> Term:
        return self.parse_additive()

    def parse_additive(self) -> Term:
        left = self.parse_multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "symbol" and tok.value in ("+", "-"):
                self.advance()
                right = self.parse_multiplicative()
                left = ArithExpr(str(tok.value), left, right)
            else:
                return left

    def parse_multiplicative(self) -> Term:
        left = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind == "symbol" and tok.value in ("*", "/"):
                self.advance()
                right = self.parse_primary()
                left = ArithExpr(str(tok.value), left, right)
            else:
                return left

    def parse_primary(self) -> Term:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return Constant(tok.value)
        if tok.kind == "string":
            self.advance()
            return Constant(tok.value)
        if tok.kind == "keyword":
            if tok.value == "true":
                self.advance()
                return Constant(True)
            if tok.value == "false":
                self.advance()
                return Constant(False)
            if tok.value == "nil":
                self.advance()
                return Constant(NIL)
            raise self.error(f"unexpected keyword {tok.text!r} in term")
        if tok.kind == "variable":
            self.advance()
            if tok.value == "_":
                return self.fresh_var()
            return Var(str(tok.value))
        if tok.kind == "symbol" and tok.value == "-":
            self.advance()
            inner = self.parse_primary()
            if isinstance(inner, Constant) and isinstance(
                inner.value, (int, float)
            ):
                return Constant(-inner.value)
            return ArithExpr("-", Constant(0), inner)
        if tok.kind == "symbol" and tok.value in ("{", "[", "<"):
            closing = {"{": "}", "[": "]", "<": ">"}[tok.value]
            self.advance()
            elements: list[Term] = []
            if not self.accept_symbol(closing):
                while True:
                    elements.append(self.parse_term())
                    if self.accept_symbol(closing):
                        break
                    self.expect_symbol(",")
            return self._collection_term(str(tok.value), elements)
        if tok.kind == "symbol" and tok.value == "(":
            self.advance()
            inner = self.parse_args()
            if (
                len(inner.positional) == 1
                and not inner.labeled
                and inner.self_term is None
            ):
                return inner.positional[0]  # parenthesized term
            return Pattern(inner)  # tuple construction / pattern
        if tok.kind == "name":
            name = self.take_name()
            if self.accept_symbol("("):
                args: list[Term] = []
                if not self.accept_symbol(")"):
                    while True:
                        args.append(self.parse_term())
                        if self.accept_symbol(")"):
                            break
                        self.expect_symbol(",")
                return FunctionApp(name, tuple(args))
            return FunctionApp(name, ())
        raise self.error(f"expected a term, found {tok.text!r}")

    def _collection_term(self, opener: str, elements: list[Term]) -> Term:
        if all(isinstance(e, Constant) for e in elements):
            values = [e.value for e in elements]  # type: ignore[union-attr]
            if opener == "{":
                return Constant(SetValue(values))
            if opener == "[":
                return Constant(MultisetValue(values))
            return Constant(SequenceValue(values))
        from repro.language.ast import CollectionTerm

        kind = {"{": "set", "[": "multiset", "<": "sequence"}[opener]
        return CollectionTerm(kind, tuple(elements))
