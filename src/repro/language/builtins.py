"""Built-in predicates (Section 3.1).

LOGRES provides a comprehensive list of built-ins over complex terms —
``member``, ``union``, ``append``, ``count``, etc. — plus equality,
arithmetic and comparisons.  Built-ins add no expressive power (each could
be simulated with rules) but improve readability; they are *untyped*, so
every variable occurring in one must also occur in an ordinary literal of
the same rule (checked by the safety analysis).

Each built-in is a :class:`Builtin` with a ``solve`` method that receives
the partially evaluated argument list — concrete values for bound
positions, :class:`~repro.language.ast.Var` for unbound ones — and yields
binding dictionaries for the unbound variables.  This gives every built-in
its natural set of modes: ``member(X, S)`` enumerates when ``X`` is free
and checks when bound; ``union(X, Y, Z)`` computes the last argument from
the first two (the conventional *result-last* position) or verifies all
three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import BuiltinError
from repro.language.ast import Var
from repro.values.complex import (
    MultisetValue,
    SequenceValue,
    SetValue,
    Value,
)

Bindings = dict[Var, Value]
Resolved = Value | Var  # a bound value, or the still-unbound variable


def _is_unbound(x: Resolved) -> bool:
    return isinstance(x, Var)


def _require_bound(name: str, args: Iterable[Resolved]) -> None:
    for a in args:
        if _is_unbound(a):
            raise BuiltinError(
                f"builtin {name!r} requires {a!r} to be bound"
            )


def _collection_elements(name: str, value: Value):
    if isinstance(value, (SetValue, MultisetValue, SequenceValue)):
        return list(value)
    raise BuiltinError(
        f"builtin {name!r} expects a set, multiset or sequence,"
        f" got {value!r}"
    )


@dataclass(frozen=True)
class Builtin:
    """A built-in predicate: name, arity, and solver."""

    name: str
    arity: int
    solver: Callable[..., Iterator[Bindings]]
    doc: str = ""

    def solve(self, args: list[Resolved]) -> Iterator[Bindings]:
        if len(args) != self.arity:
            raise BuiltinError(
                f"builtin {self.name!r} takes {self.arity} arguments,"
                f" got {len(args)}"
            )
        return self.solver(*args)


def _unify_result(result: Value, target: Resolved) -> Iterator[Bindings]:
    """Yield the binding (or check) placing ``result`` at ``target``."""
    if _is_unbound(target):
        yield {target: result}
    elif target == result:
        yield {}


# ---------------------------------------------------------------------------
# equality and comparisons
# ---------------------------------------------------------------------------
def _eq(left: Resolved, right: Resolved) -> Iterator[Bindings]:
    if _is_unbound(left) and _is_unbound(right):
        raise BuiltinError("'=' needs at least one bound side")
    if _is_unbound(left):
        yield {left: right}
    elif _is_unbound(right):
        yield {right: left}
    elif left == right:
        yield {}


def _neq(left: Resolved, right: Resolved) -> Iterator[Bindings]:
    _require_bound("!=", (left, right))
    if left != right:
        yield {}


def _comparison(op: Callable[[Value, Value], bool], symbol: str):
    def solver(left: Resolved, right: Resolved) -> Iterator[Bindings]:
        _require_bound(symbol, (left, right))
        try:
            holds = op(left, right)
        except TypeError as exc:
            raise BuiltinError(
                f"incomparable values for {symbol!r}: {left!r}, {right!r}"
            ) from exc
        if holds:
            yield {}

    return solver


# ---------------------------------------------------------------------------
# collections
# ---------------------------------------------------------------------------
def _member(element: Resolved, collection: Resolved) -> Iterator[Bindings]:
    _require_bound("member", (collection,))
    values = _collection_elements("member", collection)
    if _is_unbound(element):
        seen = set()
        for val in values:
            if val not in seen:
                seen.add(val)
                yield {element: val}
    elif element in values:
        yield {}


def _union(left: Resolved, right: Resolved, result: Resolved
           ) -> Iterator[Bindings]:
    _require_bound("union", (left, right))
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        yield from _unify_result(left.union(right), result)
    elif isinstance(left, MultisetValue) and isinstance(right, MultisetValue):
        yield from _unify_result(left.union(right), result)
    elif isinstance(left, SequenceValue) and isinstance(right, SequenceValue):
        yield from _unify_result(left.concat(right), result)
    else:
        raise BuiltinError(
            f"union expects two collections of the same kind:"
            f" {left!r}, {right!r}"
        )


def _intersection(left: Resolved, right: Resolved, result: Resolved
                  ) -> Iterator[Bindings]:
    _require_bound("intersection", (left, right))
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        yield from _unify_result(left.intersection(right), result)
    else:
        raise BuiltinError("intersection expects two sets")


def _difference(left: Resolved, right: Resolved, result: Resolved
                ) -> Iterator[Bindings]:
    _require_bound("difference", (left, right))
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        yield from _unify_result(left.difference(right), result)
    else:
        raise BuiltinError("difference expects two sets")


def _append(collection: Resolved, element: Resolved, result: Resolved
            ) -> Iterator[Bindings]:
    _require_bound("append", (collection, element))
    if isinstance(collection, SetValue):
        yield from _unify_result(collection.with_element(element), result)
    elif isinstance(collection, SequenceValue):
        yield from _unify_result(collection.appended(element), result)
    elif isinstance(collection, MultisetValue):
        yield from _unify_result(
            collection.union(MultisetValue([element])), result
        )
    else:
        raise BuiltinError(
            f"append expects a collection first, got {collection!r}"
        )


def _count(collection: Resolved, result: Resolved) -> Iterator[Bindings]:
    _require_bound("count", (collection,))
    yield from _unify_result(
        len(_collection_elements("count", collection)), result
    )


def _sum(collection: Resolved, result: Resolved) -> Iterator[Bindings]:
    _require_bound("sum", (collection,))
    values = _collection_elements("sum", collection)
    total = 0
    for val in values:
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            raise BuiltinError(f"sum over non-numeric element {val!r}")
        total += val
    yield from _unify_result(total, result)


def _extreme(fn, name):
    def solver(collection: Resolved, result: Resolved) -> Iterator[Bindings]:
        _require_bound(name, (collection,))
        values = _collection_elements(name, collection)
        if not values:
            return
        yield from _unify_result(fn(values), result)

    return solver


def _length(sequence: Resolved, result: Resolved) -> Iterator[Bindings]:
    _require_bound("length", (sequence,))
    if not isinstance(sequence, SequenceValue):
        raise BuiltinError(f"length expects a sequence, got {sequence!r}")
    yield from _unify_result(len(sequence), result)


def _nth(sequence: Resolved, index: Resolved, result: Resolved
         ) -> Iterator[Bindings]:
    _require_bound("nth", (sequence, index))
    if not isinstance(sequence, SequenceValue):
        raise BuiltinError(f"nth expects a sequence, got {sequence!r}")
    if not isinstance(index, int) or isinstance(index, bool):
        raise BuiltinError(f"nth expects an integer index, got {index!r}")
    if 1 <= index <= len(sequence):  # 1-based, database style
        yield from _unify_result(sequence[index - 1], result)


def _first(sequence: Resolved, result: Resolved) -> Iterator[Bindings]:
    _require_bound("first", (sequence,))
    if not isinstance(sequence, SequenceValue):
        raise BuiltinError(f"first expects a sequence, got {sequence!r}")
    if len(sequence):
        yield from _unify_result(sequence[0], result)


def _last(sequence: Resolved, result: Resolved) -> Iterator[Bindings]:
    _require_bound("last", (sequence,))
    if not isinstance(sequence, SequenceValue):
        raise BuiltinError(f"last expects a sequence, got {sequence!r}")
    if len(sequence):
        yield from _unify_result(sequence[len(sequence) - 1], result)


def _reverse(sequence: Resolved, result: Resolved) -> Iterator[Bindings]:
    _require_bound("reverse", (sequence,))
    if not isinstance(sequence, SequenceValue):
        raise BuiltinError(
            f"reverse expects a sequence, got {sequence!r}"
        )
    yield from _unify_result(
        SequenceValue(reversed(sequence.elements)), result
    )


def _subset(left: Resolved, right: Resolved) -> Iterator[Bindings]:
    _require_bound("subset", (left, right))
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        if left.elements <= right.elements:
            yield {}
    else:
        raise BuiltinError("subset expects two sets")


# ---------------------------------------------------------------------------
# numeric predicates
# ---------------------------------------------------------------------------
def _numeric_check(fn, name):
    def solver(value: Resolved) -> Iterator[Bindings]:
        _require_bound(name, (value,))
        if not isinstance(value, int) or isinstance(value, bool):
            raise BuiltinError(f"{name} expects an integer, got {value!r}")
        if fn(value):
            yield {}

    return solver


def _mod(left: Resolved, right: Resolved, result: Resolved
         ) -> Iterator[Bindings]:
    _require_bound("mod", (left, right))
    if right == 0:
        raise BuiltinError("mod by zero")
    yield from _unify_result(left % right, result)


BUILTINS: dict[str, Builtin] = {}


def _register(name: str, arity: int, solver, doc: str) -> None:
    BUILTINS[name] = Builtin(name, arity, solver, doc)


_register("=", 2, _eq, "unification / assignment")
_register("!=", 2, _neq, "disequality (both sides bound)")
_register("<", 2, _comparison(lambda a, b: a < b, "<"), "less than")
_register("<=", 2, _comparison(lambda a, b: a <= b, "<="), "at most")
_register(">", 2, _comparison(lambda a, b: a > b, ">"), "greater than")
_register(">=", 2, _comparison(lambda a, b: a >= b, ">="), "at least")
_register("member", 2, _member, "element of a collection (enumerating)")
_register("union", 3, _union, "union(X, Y, Z): Z = X ∪ Y")
_register("intersection", 3, _intersection,
          "intersection(X, Y, Z): Z = X ∩ Y")
_register("difference", 3, _difference, "difference(X, Y, Z): Z = X − Y")
_register("append", 3, _append, "append(C, E, R): R = C with E added")
_register("count", 2, _count, "count(C, N): N = |C|")
_register("sum", 2, _sum, "sum(C, N): N = Σ C (numeric)")
_register("min", 2, _extreme(min, "min"), "min(C, M)")
_register("max", 2, _extreme(max, "max"), "max(C, M)")
_register("length", 2, _length, "length(Seq, N)")
_register("nth", 3, _nth, "nth(Seq, I, X): 1-based element access")
_register("first", 2, _first, "first(Seq, X): head element")
_register("last", 2, _last, "last(Seq, X): final element")
_register("reverse", 2, _reverse, "reverse(Seq, R): reversed sequence")
_register("subset", 2, _subset, "subset(X, Y): X ⊆ Y")
_register("even", 1, _numeric_check(lambda n: n % 2 == 0, "even"), "even(N)")
_register("odd", 1, _numeric_check(lambda n: n % 2 == 1, "odd"), "odd(N)")
_register("mod", 3, _mod, "mod(X, Y, Z): Z = X mod Y")

#: Comparison built-ins never bind variables and thus never make a rule safe.
NON_BINDING = {"=", "!=", "<", "<=", ">", ">=", "even", "odd", "subset"}

#: Built-ins whose *last* argument is a result position that can bind.
RESULT_LAST = {
    "union", "intersection", "difference", "append", "count", "sum",
    "min", "max", "length", "nth", "mod", "first", "last", "reverse",
}


def is_builtin(name: str) -> bool:
    return name.lower() in BUILTINS


def get_builtin(name: str) -> Builtin:
    try:
        return BUILTINS[name.lower()]
    except KeyError:
        raise BuiltinError(f"unknown builtin: {name!r}") from None
