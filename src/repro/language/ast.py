"""Abstract syntax of the LOGRES rule language (Section 3.1).

A rule is ``L <- L1, ..., Ln`` where each literal is positive or negated.
Literals over class or association predicates carry three kinds of
variables:

* ordinary typed variables bound to attribute values,
* oid variables, written ``self X`` (values invisible to users),
* at most one *tuple variable* standing for the whole tuple (including the
  oid for class predicates).

Arguments are referenced by label; a labeled argument's term may itself be
a :class:`Pattern`, which matches into nested tuples and *dereferences*
oid-valued components (the paper's ``school(dean(self X))``).

Built-in literals (member, union, append, count, comparisons, arithmetic)
are untyped; their variables must also occur in an ordinary literal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.span import Span
from repro.values.complex import Value, value_repr

# Span is re-exported here for convenience: it is carried by Rule,
# Literal, BuiltinLiteral, FunctionHead and Goal when the node came from
# the parser; programmatically built nodes have span=None.


class Term:
    """Abstract base of all terms."""

    __slots__ = ()

    def variables(self) -> Iterator["Var"]:
        return iter(())


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A variable.  By convention names start with an uppercase letter."""

    name: str

    def variables(self) -> Iterator["Var"]:
        yield self

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A ground value: elementary, or a complex value literal."""

    value: Value

    def __repr__(self) -> str:
        return value_repr(self.value)


@dataclass(frozen=True, slots=True)
class FunctionApp(Term):
    """An application of a data function, e.g. ``desc(Y)``.

    In term position it denotes the *set* of results for the given
    arguments; inside ``member(X, desc(Y))`` it denotes the function graph.
    """

    name: str
    args: tuple[Term, ...] = ()

    def variables(self) -> Iterator[Var]:
        for a in self.args:
            yield from a.variables()

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class ArithExpr(Term):
    """An arithmetic expression term, e.g. ``Y + 1``."""

    op: str  # '+', '-', '*', '/', 'mod'
    left: Term
    right: Term

    def variables(self) -> Iterator[Var]:
        yield from self.left.variables()
        yield from self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True)
class CollectionTerm(Term):
    """A collection literal containing variables, e.g. ``{X, Y}``.

    Resolved to a concrete value once all element terms are bound.
    ``kind`` is ``"set"``, ``"multiset"`` or ``"sequence"``.
    """

    kind: str
    elements: tuple[Term, ...]

    def variables(self) -> Iterator[Var]:
        for e in self.elements:
            yield from e.variables()

    def __repr__(self) -> str:
        open_, close = {
            "set": ("{", "}"),
            "multiset": ("[", "]"),
            "sequence": ("<", ">"),
        }[self.kind]
        inner = ", ".join(repr(e) for e in self.elements)
        return f"{open_}{inner}{close}"


@dataclass(frozen=True, slots=True, init=False)
class Args:
    """The argument list of a literal or nested pattern.

    ``labeled`` holds (label, term) pairs; ``self_term`` the oid variable
    or constant following the ``self`` keyword; ``tuple_var`` the single
    unlabeled variable standing for the whole tuple.

    ``positional`` holds unlabeled terms as written in source text (the
    paper's ``advises(X1, Y1)``).  They are resolved against the schema by
    :func:`repro.language.analysis.resolve_positional`: when a literal is
    all-positional with as many terms as the predicate has fields they map
    to fields in declaration order, and a single unlabeled variable
    otherwise becomes the tuple variable.  The engine only accepts
    resolved (positional-free) literals.
    """

    labeled: tuple[tuple[str, Term], ...]
    self_term: Term | None
    tuple_var: Var | None
    positional: tuple[Term, ...]

    def __init__(self, labeled=(), self_term=None, tuple_var=None,
                 positional=()):
        object.__setattr__(
            self,
            "labeled",
            tuple((label.lower(), term) for label, term in labeled),
        )
        object.__setattr__(self, "self_term", self_term)
        object.__setattr__(self, "tuple_var", tuple_var)
        object.__setattr__(self, "positional", tuple(positional))

    @property
    def is_empty(self) -> bool:
        return (
            not self.labeled
            and self.self_term is None
            and self.tuple_var is None
            and not self.positional
        )

    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.labeled)

    def variables(self) -> Iterator[Var]:
        for _, term in self.labeled:
            yield from term.variables()
        if self.self_term is not None:
            yield from self.self_term.variables()
        if self.tuple_var is not None:
            yield self.tuple_var
        for term in self.positional:
            yield from term.variables()

    def __repr__(self) -> str:
        parts = []
        if self.self_term is not None:
            parts.append(f"self {self.self_term!r}")
        parts.extend(f"{label} {term!r}" for label, term in self.labeled)
        if self.tuple_var is not None:
            parts.append(repr(self.tuple_var))
        parts.extend(repr(t) for t in self.positional)
        return ", ".join(parts)


@dataclass(frozen=True, slots=True)
class Pattern(Term):
    """A nested pattern term: matches a tuple component or dereferences an
    oid-valued component into the referenced object's attributes."""

    args: Args

    def variables(self) -> Iterator[Var]:
        return self.args.variables()

    def __repr__(self) -> str:
        return f"({self.args!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An ordinary literal over a class or association predicate."""

    pred: str
    args: Args = field(default_factory=Args)
    negated: bool = False
    span: Span | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "pred", self.pred.lower())

    def variables(self) -> Iterator[Var]:
        return self.args.variables()

    def negate(self) -> "Literal":
        return Literal(self.pred, self.args, not self.negated,
                       span=self.span)

    def __repr__(self) -> str:
        sign = "~" if self.negated else ""
        return f"{sign}{self.pred}({self.args!r})"


@dataclass(frozen=True, slots=True)
class BuiltinLiteral:
    """A built-in predicate literal, e.g. ``member(X, S)`` or ``X < Y``.

    The conventional result position of constructive built-ins (union,
    append, ...) is the **last** argument.
    """

    name: str
    args: tuple[Term, ...] = ()
    negated: bool = False
    span: Span | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.lower())

    @property
    def pred(self) -> str:  # uniform access alongside Literal
        return self.name

    def variables(self) -> Iterator[Var]:
        for a in self.args:
            yield from a.variables()

    def negate(self) -> "BuiltinLiteral":
        return BuiltinLiteral(self.name, self.args, not self.negated,
                              span=self.span)

    def __repr__(self) -> str:
        sign = "~" if self.negated else ""
        inner = ", ".join(repr(a) for a in self.args)
        return f"{sign}{self.name}({inner})"


BodyLiteral = Union[Literal, BuiltinLiteral]


@dataclass(frozen=True, slots=True)
class FunctionHead:
    """A head of the form ``member(X, f(Y1, ..., Yk))`` defining a data
    function (Examples 2.2 and 3.2)."""

    function: str
    element: Term
    args: tuple[Term, ...] = ()
    negated: bool = False
    span: Span | None = field(default=None, compare=False)

    def variables(self) -> Iterator[Var]:
        yield from self.element.variables()
        for a in self.args:
            yield from a.variables()

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        sign = "~" if self.negated else ""
        return f"{sign}member({self.element!r}, {self.function}({inner}))"


@dataclass(frozen=True, slots=True)
class Rule:
    """One rule ``head <- body``.  An empty body makes the rule a fact.

    A negated head expresses deletion; a :class:`FunctionHead` populates a
    data function; a denial (integrity constraint) has ``head = None``.
    """

    head: Literal | FunctionHead | None
    body: tuple[BodyLiteral, ...] = ()
    name: str = ""
    span: Span | None = field(default=None, compare=False)

    @property
    def is_fact(self) -> bool:
        return not self.body and self.head is not None

    @property
    def is_denial(self) -> bool:
        return self.head is None

    def head_variables(self) -> list[Var]:
        if self.head is None:
            return []
        seen: list[Var] = []
        for v in self.head.variables():
            if v not in seen:
                seen.append(v)
        return seen

    def body_variables(self) -> list[Var]:
        seen: list[Var] = []
        for lit in self.body:
            for v in lit.variables():
                if v not in seen:
                    seen.append(v)
        return seen

    def positive_body(self) -> list[BodyLiteral]:
        return [l for l in self.body if not l.negated]

    def negative_body(self) -> list[BodyLiteral]:
        return [l for l in self.body if l.negated]

    def __repr__(self) -> str:
        head = "" if self.head is None else repr(self.head)
        if not self.body:
            return f"{head}."
        body = ", ".join(repr(l) for l in self.body)
        return f"{head} <- {body}."


@dataclass(frozen=True, slots=True)
class Goal:
    """A conjunctive goal ``?- L1, ..., Ln`` evaluated against an instance.

    The answer is the set of bindings of the goal's free variables.
    """

    literals: tuple[BodyLiteral, ...]
    span: Span | None = field(default=None, compare=False)

    def variables(self) -> list[Var]:
        seen: list[Var] = []
        for lit in self.literals:
            for v in lit.variables():
                if v not in seen:
                    seen.append(v)
        return seen

    def __repr__(self) -> str:
        return "?- " + ", ".join(repr(l) for l in self.literals) + "."


@dataclass(frozen=True, slots=True)
class Program:
    """A set of rules with an optional goal."""

    rules: tuple[Rule, ...] = ()
    goal: Goal | None = None

    def __repr__(self) -> str:
        lines = [repr(r) for r in self.rules]
        if self.goal is not None:
            lines.append(repr(self.goal))
        return "\n".join(lines)

    def predicates_defined(self) -> set[str]:
        out = set()
        for r in self.rules:
            if isinstance(r.head, Literal):
                out.add(r.head.pred)
            elif isinstance(r.head, FunctionHead):
                out.add(f"__fn_{r.head.function}")
        return out

    def predicates_used(self) -> set[str]:
        out = set()
        for r in self.rules:
            for lit in r.body:
                if isinstance(lit, Literal):
                    out.add(lit.pred)
        if self.goal:
            for lit in self.goal.literals:
                if isinstance(lit, Literal):
                    out.add(lit.pred)
        return out


# ---------------------------------------------------------------------------
# convenience constructors (used heavily in tests and examples)
# ---------------------------------------------------------------------------
def v(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def c(value: Value) -> Constant:
    """Shorthand for :class:`Constant`."""
    return Constant(value)


def _coerce_term(x) -> Term:
    if isinstance(x, Term):
        return x
    return Constant(x)


def lit(pred: str, *, self_: Term | None = None, tuple_: Var | None = None,
        negated: bool = False, **labeled) -> Literal:
    """Build a literal with keyword-labeled arguments.

    >>> lit("person", name=v("X"), self_=v("S"))
    person(self S, name X)
    """
    return Literal(
        pred,
        Args(
            labeled=tuple((k, _coerce_term(t)) for k, t in labeled.items()),
            self_term=self_,
            tuple_var=tuple_,
        ),
        negated=negated,
    )


def builtin(name: str, *args, negated: bool = False) -> BuiltinLiteral:
    """Build a built-in literal from terms or plain Python values."""
    return BuiltinLiteral(
        name, tuple(_coerce_term(a) for a in args), negated=negated
    )


def rule(head, *body, name: str = "") -> Rule:
    """Build a rule from a head literal and body literals."""
    return Rule(head, tuple(body), name=name)


def fact(pred: str, **labeled) -> Rule:
    """Build a ground fact rule."""
    return Rule(lit(pred, **labeled))


def goal(*literals) -> Goal:
    return Goal(tuple(literals))
