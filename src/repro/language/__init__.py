"""The LOGRES rule-based language: AST, parser, analysis, built-ins."""

from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    Constant,
    FunctionApp,
    Goal,
    Literal,
    Pattern,
    Program,
    Rule,
    Term,
    Var,
)
from repro.language.parser import parse_program, parse_schema_source, parse_source
from repro.language.analysis import (
    analyze_program,
    check_safety,
    check_types,
    stratify,
)
from repro.language.builtins import BUILTINS, is_builtin

__all__ = [
    "Args",
    "ArithExpr",
    "BUILTINS",
    "BuiltinLiteral",
    "Constant",
    "FunctionApp",
    "Goal",
    "Literal",
    "Pattern",
    "Program",
    "Rule",
    "Term",
    "Var",
    "analyze_program",
    "check_safety",
    "check_types",
    "is_builtin",
    "parse_program",
    "parse_schema_source",
    "parse_source",
    "stratify",
]
