"""Evaluation of algebra expressions against a catalog of relations."""

from __future__ import annotations

from repro.errors import AlgebraError, NonTerminationError
from repro.algres.expr import (
    ITER,
    Aggregate,
    Closure,
    Difference,
    Distinct,
    Expr,
    Extend,
    Intersection,
    Join,
    Nest,
    Product,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    Unnest,
)
from repro.algres.relation import Relation
from repro.types.descriptors import (
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    SetType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.values.complex import SetValue, TupleValue, Value


def _infer_type(value: Value) -> TypeDescriptor:
    """Best-effort type of a computed attribute (extend / aggregate)."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return STRING
    return INTEGER  # nested computed values keep a nominal type


class Catalog:
    """A mutable namespace of relations (the ALGRES workspace)."""

    def __init__(self, relations: dict[str, Relation] | None = None):
        self._relations: dict[str, Relation] = {}
        for name, rel in (relations or {}).items():
            self.register(name, rel)

    def register(self, name: str, relation: Relation) -> None:
        self._relations[name.lower()] = relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise AlgebraError(f"unknown relation {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._relations

    def names(self) -> list[str]:
        return sorted(self._relations)

    def __repr__(self) -> str:
        return f"Catalog({', '.join(self.names())})"


def evaluate(expr: Expr, catalog: Catalog) -> Relation:
    """Evaluate ``expr`` to a relation."""
    if isinstance(expr, Scan):
        return catalog.get(expr.name)
    if isinstance(expr, Select):
        child = evaluate(expr.child, catalog)
        return child.with_rows(
            r for r in child if expr.condition.holds(r)
        )
    if isinstance(expr, Project):
        child = evaluate(expr.child, catalog)
        for label in expr.labels:
            child.attribute_type(label)  # raises on unknown label
        schema = TupleType(tuple(
            f for f in child.schema.fields if f.label in expr.labels
        ))
        return Relation(
            child.name, schema, (r.project(expr.labels) for r in child)
        )
    if isinstance(expr, Rename):
        child = evaluate(expr.child, catalog)
        mapping = dict(expr.mapping)
        for old in mapping:
            child.attribute_type(old)
        new_labels = [mapping.get(f.label, f.label)
                      for f in child.schema.fields]
        if len(set(new_labels)) != len(new_labels):
            raise AlgebraError(
                f"rename produces duplicate attributes {new_labels}"
            )
        schema = TupleType(tuple(
            TupleField(mapping.get(f.label, f.label), f.type)
            for f in child.schema.fields
        ))
        return Relation(
            child.name, schema,
            (
                TupleValue({mapping.get(k, k): v for k, v in r.items})
                for r in child
            ),
        )
    if isinstance(expr, Join):
        return _join(
            evaluate(expr.left, catalog), evaluate(expr.right, catalog)
        )
    if isinstance(expr, Product):
        return _product(
            evaluate(expr.left, catalog), evaluate(expr.right, catalog)
        )
    if isinstance(expr, Union):
        left = evaluate(expr.left, catalog)
        right = evaluate(expr.right, catalog)
        _require_same_schema("union", left, right)
        return left.with_rows(left.rows | right.rows)
    if isinstance(expr, Difference):
        left = evaluate(expr.left, catalog)
        right = evaluate(expr.right, catalog)
        _require_same_schema("difference", left, right)
        return left.with_rows(left.rows - right.rows)
    if isinstance(expr, Intersection):
        left = evaluate(expr.left, catalog)
        right = evaluate(expr.right, catalog)
        _require_same_schema("intersection", left, right)
        return left.with_rows(left.rows & right.rows)
    if isinstance(expr, Distinct):
        return evaluate(expr.child, catalog)
    if isinstance(expr, Extend):
        child = evaluate(expr.child, catalog)
        label = expr.label.lower()
        if child.schema.has_label(label):
            raise AlgebraError(
                f"extend: attribute {label!r} already exists"
            )
        sample_rows = [
            r.with_field(label, expr.scalar.fetch(r)) for r in child
        ]
        extended_type = (
            _infer_type(sample_rows[0][label]) if sample_rows else INTEGER
        )
        schema = TupleType(
            child.schema.fields + (TupleField(label, extended_type),)
        )
        return Relation(child.name, schema, sample_rows)
    if isinstance(expr, Nest):
        return _nest(evaluate(expr.child, catalog), expr)
    if isinstance(expr, Unnest):
        return _unnest(evaluate(expr.child, catalog), expr)
    if isinstance(expr, Aggregate):
        return _aggregate(evaluate(expr.child, catalog), expr)
    if isinstance(expr, Closure):
        return _closure(expr, catalog)
    raise AlgebraError(f"unknown expression node {expr!r}")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _require_same_schema(op: str, left: Relation, right: Relation) -> None:
    if set(left.labels) != set(right.labels):
        raise AlgebraError(
            f"{op}: incompatible schemas {left.labels} vs {right.labels}"
        )


def _join(left: Relation, right: Relation) -> Relation:
    common = [l for l in left.labels if l in set(right.labels)]
    right_only = [f for f in right.schema.fields
                  if f.label not in set(left.labels)]
    schema = TupleType(left.schema.fields + tuple(right_only))
    # hash join on the common attributes
    index: dict[tuple, list[TupleValue]] = {}
    for row in right:
        key = tuple(row[l] for l in common)
        index.setdefault(key, []).append(row)
    out = []
    for row in left:
        key = tuple(row[l] for l in common)
        for other in index.get(key, ()):
            merged = row.as_dict()
            for f in right_only:
                merged[f.label] = other[f.label]
            out.append(TupleValue(merged))
    return Relation(f"{left.name}_{right.name}", schema, out)


def _product(left: Relation, right: Relation) -> Relation:
    overlap = set(left.labels) & set(right.labels)
    if overlap:
        raise AlgebraError(
            f"product: attribute overlap {sorted(overlap)}; rename first"
        )
    schema = TupleType(left.schema.fields + right.schema.fields)
    out = []
    for a in left:
        for b in right:
            out.append(a.merged(b))
    return Relation(f"{left.name}_{right.name}", schema, out)


def _nest(child: Relation, expr: Nest) -> Relation:
    for label in expr.nested:
        child.attribute_type(label)
    if child.schema.has_label(expr.as_label):
        raise AlgebraError(
            f"nest: attribute {expr.as_label!r} already exists"
        )
    keep = [f for f in child.schema.fields if f.label not in expr.nested]
    nested_fields = tuple(
        f for f in child.schema.fields if f.label in expr.nested
    )
    element_type = (
        nested_fields[0].type if len(nested_fields) == 1
        else TupleType(nested_fields)
    )
    schema = TupleType(
        tuple(keep) + (TupleField(expr.as_label, SetType(element_type)),)
    )
    groups: dict[TupleValue, set] = {}
    keep_labels = [f.label for f in keep]
    for row in child:
        key = row.project(keep_labels)
        if len(nested_fields) == 1:
            member = row[nested_fields[0].label]
        else:
            member = row.project(expr.nested)
        groups.setdefault(key, set()).add(member)
    out = [
        key.with_field(expr.as_label, SetValue(members))
        for key, members in groups.items()
    ]
    return Relation(child.name, schema, out)


def _unnest(child: Relation, expr: Unnest) -> Relation:
    label = expr.label.lower()
    declared = child.attribute_type(label)
    if not isinstance(declared, SetType):
        raise AlgebraError(
            f"unnest: attribute {label!r} is not set-valued"
        )
    inner = declared.element
    keep = tuple(f for f in child.schema.fields if f.label != label)
    if isinstance(inner, TupleType):
        schema = TupleType(keep + inner.fields)
        out = []
        for row in child:
            for member in row[label]:
                out.append(row.without(label).merged(member))
    else:
        schema = TupleType(keep + (TupleField(label, inner),))
        out = []
        for row in child:
            for member in row[label]:
                out.append(row.with_field(label, member))
    return Relation(child.name, schema, out)


_AGGS = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
}


def _aggregate(child: Relation, expr: Aggregate) -> Relation:
    if expr.fn not in _AGGS:
        raise AlgebraError(f"unknown aggregate {expr.fn!r}")
    for label in expr.group:
        child.attribute_type(label)
    groups: dict[TupleValue, list] = {}
    for row in child:
        key = row.project(expr.group)
        groups.setdefault(key, []).append(
            row[expr.over] if expr.over else 1
        )
    keep = tuple(
        f for f in child.schema.fields if f.label in expr.group
    )
    schema = TupleType(keep + (TupleField(expr.as_label, INTEGER),))
    out = [
        key.with_field(expr.as_label, _AGGS[expr.fn](values))
        for key, values in groups.items()
    ]
    return Relation(child.name, schema, out)


def _closure(expr: Closure, catalog: Catalog) -> Relation:
    current = evaluate(expr.seed, catalog)
    scoped = Catalog({name: catalog.get(name) for name in catalog.names()})
    for _ in range(expr.max_iterations):
        scoped.register(ITER, current)
        stepped = evaluate(expr.step, scoped)
        if expr.mode == "inflationary":
            if not (set(stepped.labels) == set(current.labels)):
                raise AlgebraError(
                    "closure step changed the schema of the iteration"
                )
            merged = current.with_rows(current.rows | stepped.rows)
            if len(merged) == len(current):
                return current
            current = merged
        elif expr.mode == "iterate":
            if stepped.rows == current.rows:
                return current
            current = stepped
        else:
            raise AlgebraError(f"unknown closure mode {expr.mode!r}")
    raise NonTerminationError(
        f"closure did not converge in {expr.max_iterations} iterations",
        expr.max_iterations,
    )
