"""NF² relations: a named schema (tuple type) plus a set of tuples.

Relations are immutable; operators produce new relations.  Attribute
values may be elementary, oids, or nested tuples / sets / multisets /
sequences — the same value model as LOGRES, which is what makes the
LOGRES-to-ALGRES translation (``repro.compiler``) a pure schema mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import AlgebraError
from repro.types.descriptors import TupleField, TupleType, TypeDescriptor
from repro.values.complex import TupleValue


@dataclass(frozen=True)
class Relation:
    """An NF² relation: a tuple-type schema and a frozenset of rows."""

    name: str
    schema: TupleType
    rows: frozenset

    def __init__(self, name: str, schema: TupleType, rows: Iterable = ()):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "schema", schema)
        checked = []
        labels = set(schema.labels)
        for row in rows:
            if not isinstance(row, TupleValue):
                raise AlgebraError(
                    f"relation {name!r}: row {row!r} is not a tuple value"
                )
            extra = set(row.labels) - labels
            if extra:
                raise AlgebraError(
                    f"relation {name!r}: row has unknown attributes"
                    f" {sorted(extra)}"
                )
            checked.append(row)
        object.__setattr__(self, "rows", frozenset(checked))

    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        return self.schema.labels

    def attribute_type(self, label: str) -> TypeDescriptor:
        try:
            return self.schema.field(label).type
        except KeyError:
            raise AlgebraError(
                f"relation {self.name!r} has no attribute {label!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[TupleValue]:
        return iter(self.rows)

    def __contains__(self, row: TupleValue) -> bool:
        return row in self.rows

    def with_rows(self, rows: Iterable) -> "Relation":
        return Relation(self.name, self.schema, rows)

    def renamed(self, name: str) -> "Relation":
        return Relation(name, self.schema, self.rows)

    def same_schema(self, other: "Relation") -> bool:
        return set(self.schema.fields) == set(other.schema.fields)

    def map_rows(self, fn: Callable[[TupleValue], TupleValue],
                 schema: TupleType | None = None) -> "Relation":
        return Relation(self.name, schema or self.schema,
                        (fn(r) for r in self.rows))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self.rows)} rows,"\
               f" {self.schema!r})"

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, name: str, fields: list[tuple[str, TypeDescriptor]],
              rows: Iterable[dict] = ()) -> "Relation":
        """Convenience constructor from plain Python data."""
        schema = TupleType(tuple(TupleField(l, t) for l, t in fields))
        return cls(name, schema, (TupleValue(r) for r in rows))
