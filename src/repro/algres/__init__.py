"""ALGRES: a main-memory extended (NF²) relational algebra engine.

The paper's prototype runs LOGRES on top of ALGRES [CCLLZ89], "a
main-memory based programming environment supporting an Extended
Relational Algebra" with "a very liberal closure operation".  This package
reproduces that substrate: nested relations over the same value model as
LOGRES, the classical operators (select / project / rename / join / union
/ difference / product), nest / unnest for NF² restructuring, extend and
aggregate, and a liberal :class:`~repro.algres.expr.Closure` fixpoint
operator whose mode ('inflationary' or 'iterate') changes the semantics of
the recursion — which is precisely how LOGRES "changes the semantics of
rules very easily" (Section 1).
"""

from repro.algres.relation import Relation
from repro.algres.expr import (
    Aggregate,
    And,
    Arith,
    Closure,
    Comparison,
    Condition,
    Constant_,
    Difference,
    Distinct,
    Expr,
    Extend,
    Field,
    Intersection,
    Join,
    Literal_,
    Nest,
    Not,
    Or,
    Product,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    Unnest,
)
from repro.algres.evaluator import Catalog, evaluate
from repro.algres.optimize import optimize

__all__ = [
    "Aggregate", "And", "Arith", "Catalog", "Closure", "Comparison", "Condition",
    "Constant_", "Difference", "Distinct", "Expr", "Extend", "Field",
    "Intersection", "Join", "Literal_", "Nest", "Not", "Or", "Product",
    "Project", "Relation", "Rename", "Scan", "Select", "Union", "Unnest",
    "evaluate", "optimize",
]
