"""Extended-relational-algebra expression trees.

Expressions are immutable ASTs evaluated by
:func:`repro.algres.evaluator.evaluate` against a catalog of named
relations.  Selection conditions are their own small AST (:class:`Field`
paths into nested tuples, comparisons, boolean connectives), so plans are
inspectable and serializable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AlgebraError
from repro.values.complex import TupleValue, Value


# ---------------------------------------------------------------------------
# scalar expressions over one row
# ---------------------------------------------------------------------------
class Scalar:
    """A value computed from one row."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Field(Scalar):
    """An attribute reference, possibly a path into nested tuples:
    ``Field("score", "home")``."""

    path: tuple[str, ...]

    def __init__(self, *path: str):
        object.__setattr__(self, "path", tuple(p.lower() for p in path))

    def fetch(self, row: TupleValue) -> Value:
        value: Value = row
        for step in self.path:
            if not isinstance(value, TupleValue) or step not in value:
                raise AlgebraError(
                    f"path {'.'.join(self.path)} is undefined on {row!r}"
                )
            value = value[step]
        return value

    def __repr__(self) -> str:
        return ".".join(self.path)


@dataclass(frozen=True, slots=True)
class Constant_(Scalar):
    """A literal scalar value."""

    value: Value

    def fetch(self, row: TupleValue) -> Value:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


#: alias kept for symmetry with the language module
Literal_ = Constant_


@dataclass(frozen=True, slots=True)
class Arith(Scalar):
    """An arithmetic scalar over row attributes: ``Arith('+', a, b)``."""

    op: str
    left: Scalar
    right: Scalar

    def fetch(self, row: TupleValue) -> Value:
        a = self.left.fetch(row)
        b = self.right.fetch(row)
        for side in (a, b):
            if not isinstance(side, (int, float)) or isinstance(side, bool):
                raise AlgebraError(
                    f"arithmetic on non-numeric value {side!r}"
                )
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                raise AlgebraError("division by zero")
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                return a // b
            return a / b
        raise AlgebraError(f"unknown arithmetic operator {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


# ---------------------------------------------------------------------------
# selection conditions
# ---------------------------------------------------------------------------
class Condition:
    """A boolean predicate over one row."""

    __slots__ = ()

    def holds(self, row: TupleValue) -> bool:  # pragma: no cover
        raise NotImplementedError


_OPS: dict[str, Callable[[Value, Value], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


@dataclass(frozen=True, slots=True)
class Comparison(Condition):
    """``left op right`` where the operands are scalar expressions."""

    left: Scalar
    op: str
    right: Scalar

    def holds(self, row: TupleValue) -> bool:
        try:
            fn = _OPS[self.op]
        except KeyError:
            raise AlgebraError(f"unknown comparison operator {self.op!r}")
        try:
            return fn(self.left.fetch(row), self.right.fetch(row))
        except TypeError as exc:
            raise AlgebraError(f"incomparable operands in {self!r}") from exc

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True, slots=True)
class And(Condition):
    parts: tuple[Condition, ...]

    def __init__(self, *parts: Condition):
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, row: TupleValue) -> bool:
        return all(p.holds(row) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Or(Condition):
    parts: tuple[Condition, ...]

    def __init__(self, *parts: Condition):
        object.__setattr__(self, "parts", tuple(parts))

    def holds(self, row: TupleValue) -> bool:
        return any(p.holds(row) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Not(Condition):
    inner: Condition

    def holds(self, row: TupleValue) -> bool:
        return not self.inner.holds(row)

    def __repr__(self) -> str:
        return f"not {self.inner!r}"


# ---------------------------------------------------------------------------
# relational expressions
# ---------------------------------------------------------------------------
class Expr:
    """A relational-algebra expression."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Scan(Expr):
    """A named relation from the catalog.  ``Scan("$iter")`` inside a
    :class:`Closure` step refers to the accumulating relation."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Select(Expr):
    child: Expr
    condition: Condition

    def __repr__(self) -> str:
        return f"σ[{self.condition!r}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Project(Expr):
    child: Expr
    labels: tuple[str, ...]

    def __init__(self, child: Expr, *labels: str):
        object.__setattr__(self, "child", child)
        object.__setattr__(
            self, "labels", tuple(l.lower() for l in labels)
        )

    def __repr__(self) -> str:
        return f"π[{', '.join(self.labels)}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Rename(Expr):
    """Rename attributes: ``mapping`` maps old label -> new label."""

    child: Expr
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: Expr, mapping):
        object.__setattr__(self, "child", child)
        object.__setattr__(
            self,
            "mapping",
            tuple(sorted((o.lower(), n.lower())
                         for o, n in dict(mapping).items())),
        )

    def __repr__(self) -> str:
        pairs = ", ".join(f"{o}->{n}" for o, n in self.mapping)
        return f"ρ[{pairs}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Join(Expr):
    """Natural join on the common attributes of the two children."""

    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"


@dataclass(frozen=True, slots=True)
class Product(Expr):
    """Cartesian product; attribute sets must be disjoint."""

    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


@dataclass(frozen=True, slots=True)
class Union(Expr):
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True, slots=True)
class Difference(Expr):
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


@dataclass(frozen=True, slots=True)
class Intersection(Expr):
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} ∩ {self.right!r})"


@dataclass(frozen=True, slots=True)
class Distinct(Expr):
    """Identity on set relations; kept for plans coming from multiset
    sources."""

    child: Expr

    def __repr__(self) -> str:
        return f"δ({self.child!r})"


@dataclass(frozen=True, slots=True)
class Extend(Expr):
    """Add a computed attribute: ``Extend(child, "total", scalar)``."""

    child: Expr
    label: str
    scalar: Scalar

    def __repr__(self) -> str:
        return f"ε[{self.label} := {self.scalar!r}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Nest(Expr):
    """NF² nesting: group by all attributes except ``nested``, collecting
    the ``nested`` attributes of each group into a set-valued attribute
    ``as_label``."""

    child: Expr
    nested: tuple[str, ...]
    as_label: str

    def __init__(self, child: Expr, nested, as_label: str):
        object.__setattr__(self, "child", child)
        object.__setattr__(
            self, "nested", tuple(l.lower() for l in nested)
        )
        object.__setattr__(self, "as_label", as_label.lower())

    def __repr__(self) -> str:
        return (
            f"ν[{self.as_label} := ({', '.join(self.nested)})]"
            f"({self.child!r})"
        )


@dataclass(frozen=True, slots=True)
class Unnest(Expr):
    """Inverse of :class:`Nest`: flatten the set-valued ``label``."""

    child: Expr
    label: str

    def __repr__(self) -> str:
        return f"μ[{self.label}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Aggregate(Expr):
    """Group by ``group`` labels, aggregating ``over`` with ``fn``
    ('count', 'sum', 'min', 'max') into ``as_label``."""

    child: Expr
    group: tuple[str, ...]
    fn: str
    over: str | None
    as_label: str

    def __init__(self, child, group, fn, over, as_label):
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "group",
                           tuple(l.lower() for l in group))
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "over", over.lower() if over else None)
        object.__setattr__(self, "as_label", as_label.lower())

    def __repr__(self) -> str:
        return (
            f"γ[{', '.join(self.group)}; {self.as_label} :="
            f" {self.fn}({self.over or '*'})]({self.child!r})"
        )


ITER = "$iter"


@dataclass(frozen=True, slots=True)
class Closure(Expr):
    """The liberal fixpoint operator.

    ``seed`` initializes the accumulating relation; ``step`` is an
    arbitrary expression that may reference ``Scan("$iter")`` — the
    current accumulation.  Modes:

    * ``"inflationary"`` — accumulate ``iter ∪ step(iter)`` until no new
      rows appear (the LOGRES default);
    * ``"iterate"`` — replace ``iter`` by ``step(iter)`` until a fixpoint,
      raising on oscillation (the non-inflationary variant).

    The mode is *data*: changing it changes the semantics of the recursion
    without touching the plan, which is the flexibility Section 1
    attributes to ALGRES's closure.
    """

    seed: Expr
    step: Expr
    mode: str = "inflationary"
    max_iterations: int = 10_000

    def __repr__(self) -> str:
        return f"closure[{self.mode}]({self.seed!r}; {self.step!r})"
