"""Algebraic plan optimization for ALGRES expressions.

The original ALGRES [CCLLZ89] was "an advanced database system", i.e. a
real engine with an algebraic optimizer; the plans our LOGRES compiler
emits are deliberately naive (one scan-select-rename-project block per
literal).  :func:`optimize` applies the classical equivalences:

* **cascade / merge projections** — ``π_A(π_B(e)) = π_A(e)`` when
  ``A ⊆ B``;
* **selection fusion** — ``σ_p(σ_q(e)) = σ_{p ∧ q}(e)``;
* **selection pushdown** — ``σ_p`` moves below unions (both branches),
  below projections and renames (rewriting attribute references), and
  into the branch of a join that covers the condition's attributes;
* **identity elimination** — empty renames, projections onto the full
  attribute set, and single-armed ``And``/``Or`` disappear.

Optimization is purely algebraic: ``evaluate(optimize(e)) ==
evaluate(e)`` on every catalog (property-tested).

This module is one half of the unified planner: the cost-based join
and literal ordering lives in :mod:`repro.engine.planner` (which
re-exports these identities as the single optimizer surface), and the
LOGRES→ALGRES compiler asks the planner for its join order before the
identities here clean the resulting plan up.
"""

from __future__ import annotations

from repro.algres.expr import (
    Aggregate,
    And,
    Arith,
    Closure,
    Comparison,
    Condition,
    Constant_,
    Difference,
    Distinct,
    Expr,
    Extend,
    Field,
    Intersection,
    Join,
    Nest,
    Not,
    Or,
    Product,
    Project,
    Rename,
    Scalar,
    Scan,
    Select,
    Union,
    Unnest,
)


def optimize(expr: Expr) -> Expr:
    """Apply the rewrite rules bottom-up until a fixpoint."""
    previous = None
    current = expr
    for _ in range(50):  # the rule set terminates; this is a backstop
        if current == previous:
            return current
        previous = current
        current = _rewrite(current)
    return current


# ---------------------------------------------------------------------------
# scalar / condition helpers
# ---------------------------------------------------------------------------
def _scalar_fields(scalar: Scalar) -> set[str]:
    if isinstance(scalar, Field):
        return {scalar.path[0]}
    if isinstance(scalar, Arith):
        return _scalar_fields(scalar.left) | _scalar_fields(scalar.right)
    return set()


def condition_fields(condition: Condition) -> set[str]:
    """The top-level attributes a condition reads."""
    if isinstance(condition, Comparison):
        return _scalar_fields(condition.left) | \
            _scalar_fields(condition.right)
    if isinstance(condition, (And, Or)):
        out: set[str] = set()
        for part in condition.parts:
            out |= condition_fields(part)
        return out
    if isinstance(condition, Not):
        return condition_fields(condition.inner)
    return set()


def _rename_scalar(scalar: Scalar, mapping: dict[str, str]) -> Scalar:
    if isinstance(scalar, Field):
        head = mapping.get(scalar.path[0], scalar.path[0])
        return Field(head, *scalar.path[1:])
    if isinstance(scalar, Arith):
        return Arith(
            scalar.op,
            _rename_scalar(scalar.left, mapping),
            _rename_scalar(scalar.right, mapping),
        )
    return scalar


def rename_condition(condition: Condition,
                     mapping: dict[str, str]) -> Condition:
    """Rewrite attribute references through a rename's mapping."""
    if isinstance(condition, Comparison):
        return Comparison(
            _rename_scalar(condition.left, mapping),
            condition.op,
            _rename_scalar(condition.right, mapping),
        )
    if isinstance(condition, And):
        return And(*(rename_condition(p, mapping) for p in condition.parts))
    if isinstance(condition, Or):
        return Or(*(rename_condition(p, mapping) for p in condition.parts))
    if isinstance(condition, Not):
        return Not(rename_condition(condition.inner, mapping))
    return condition


def _flatten_and(condition: Condition) -> list[Condition]:
    if isinstance(condition, And):
        out: list[Condition] = []
        for part in condition.parts:
            out.extend(_flatten_and(part))
        return out
    return [condition]


def _simplify_condition(condition: Condition) -> Condition:
    if isinstance(condition, And):
        parts = _flatten_and(condition)
        parts = [_simplify_condition(p) for p in parts]
        if len(parts) == 1:
            return parts[0]
        return And(*parts)
    if isinstance(condition, Or) and len(condition.parts) == 1:
        return _simplify_condition(condition.parts[0])
    if isinstance(condition, Not):
        return Not(_simplify_condition(condition.inner))
    return condition


# ---------------------------------------------------------------------------
# attribute sets (static schema tracking, best effort)
# ---------------------------------------------------------------------------
def _known_attributes(expr: Expr) -> set[str] | None:
    """The output attribute set of an expression, when statically known.

    Scans have catalog-dependent schemas, so they return None; most
    rewrites that need attribute sets only fire where they are known.
    """
    if isinstance(expr, Project):
        return set(expr.labels)
    if isinstance(expr, Rename):
        inner = _known_attributes(expr.child)
        if inner is None:
            return None
        mapping = dict(expr.mapping)
        return {mapping.get(a, a) for a in inner}
    if isinstance(expr, Select):
        return _known_attributes(expr.child)
    if isinstance(expr, Distinct):
        return _known_attributes(expr.child)
    if isinstance(expr, (Union, Difference, Intersection)):
        return _known_attributes(expr.left)
    if isinstance(expr, Join):
        left = _known_attributes(expr.left)
        right = _known_attributes(expr.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, Extend):
        inner = _known_attributes(expr.child)
        if inner is None:
            return None
        return inner | {expr.label}
    return None


# ---------------------------------------------------------------------------
# the rewriter
# ---------------------------------------------------------------------------
def _rewrite(expr: Expr) -> Expr:
    # bottom-up: rewrite children first
    if isinstance(expr, Select):
        child = _rewrite(expr.child)
        condition = _simplify_condition(expr.condition)
        # fuse stacked selections
        if isinstance(child, Select):
            return Select(
                child.child,
                _simplify_condition(And(condition, child.condition)),
            )
        # push below union / intersection (both branches see all rows)
        if isinstance(child, (Union, Intersection)):
            ctor = type(child)
            return ctor(
                Select(child.left, condition),
                Select(child.right, condition),
            )
        # for difference, the condition may be applied to both sides
        if isinstance(child, Difference):
            return Difference(
                Select(child.left, condition),
                Select(child.right, condition),
            )
        # push through rename, rewriting attribute references
        if isinstance(child, Rename):
            inverse = {new: old for old, new in child.mapping}
            return Rename(
                Select(child.child, rename_condition(condition, inverse)),
                dict(child.mapping),
            )
        # push through projection when the projection keeps the fields
        if isinstance(child, Project):
            if condition_fields(condition) <= set(child.labels):
                return Project(
                    Select(child.child, condition), *child.labels
                )
        # push into one side of a join when that side covers the fields
        if isinstance(child, Join):
            fields = condition_fields(condition)
            left_attrs = _known_attributes(child.left)
            right_attrs = _known_attributes(child.right)
            if left_attrs is not None and fields <= left_attrs:
                return Join(Select(child.left, condition), child.right)
            if right_attrs is not None and fields <= right_attrs:
                return Join(child.left, Select(child.right, condition))
        return Select(child, condition)

    if isinstance(expr, Project):
        child = _rewrite(expr.child)
        # cascade projections
        if isinstance(child, Project):
            if set(expr.labels) <= set(child.labels):
                return Project(child.child, *expr.labels)
        # identity projection
        attrs = _known_attributes(child)
        if attrs is not None and set(expr.labels) == attrs and \
                not isinstance(child, Scan):
            return child
        return Project(child, *expr.labels)

    if isinstance(expr, Rename):
        child = _rewrite(expr.child)
        mapping = {o: n for o, n in expr.mapping if o != n}
        if not mapping:
            return child
        # merge stacked renames
        if isinstance(child, Rename):
            inner = dict(child.mapping)
            merged = {
                old: mapping.get(new, new) for old, new in inner.items()
            }
            for old, new in mapping.items():
                if old not in inner.values():
                    merged.setdefault(old, new)
            merged = {o: n for o, n in merged.items() if o != n}
            if not merged:
                return child.child
            return Rename(child.child, merged)
        return Rename(child, mapping)

    # structural recursion for the remaining nodes
    if isinstance(expr, Join):
        return Join(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, Product):
        return Product(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, Union):
        return Union(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, Difference):
        return Difference(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, Intersection):
        return Intersection(_rewrite(expr.left), _rewrite(expr.right))
    if isinstance(expr, Distinct):
        return Distinct(_rewrite(expr.child))
    if isinstance(expr, Extend):
        return Extend(_rewrite(expr.child), expr.label, expr.scalar)
    if isinstance(expr, Nest):
        return Nest(_rewrite(expr.child), expr.nested, expr.as_label)
    if isinstance(expr, Unnest):
        return Unnest(_rewrite(expr.child), expr.label)
    if isinstance(expr, Aggregate):
        return Aggregate(_rewrite(expr.child), expr.group, expr.fn,
                         expr.over, expr.as_label)
    if isinstance(expr, Closure):
        return Closure(_rewrite(expr.seed), _rewrite(expr.step),
                       expr.mode, expr.max_iterations)
    return expr
