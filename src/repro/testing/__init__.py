"""Robustness-testing support: the fault-injection harness.

See :mod:`repro.testing.faults` and ``docs/ROBUSTNESS.md``.
"""

from repro.testing.faults import (
    FAULTS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    parse_faults,
)

__all__ = [
    "FAULTS", "FaultInjector", "FaultSpec", "InjectedFault", "parse_faults",
]
