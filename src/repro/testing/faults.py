"""Fault injection: named failure points for robustness testing.

The atomicity and crash-safety guarantees of this codebase
(``docs/ROBUSTNESS.md``) are only worth anything if they are exercised:
this module plants *named failure points* on the hot paths —

========================  ==================================================
point                     fires inside
========================  ==================================================
``storage.write``         :func:`repro.storage.persist.atomic_write_text`,
                          before any byte reaches the temp file
``storage.fsync``         the same helper, after writing but before the
                          durable rename (simulates a crash mid-save)
``storage.read``          :func:`repro.storage.persist.load_state`
``engine.iteration``      every kernel iteration boundary
                          (:meth:`repro.engine.fixpoint.Engine._iteration`)
``module.apply``          :func:`repro.modules.apply.apply_module`, after
                          mode checks, before the mode dispatch
``module.finalize``       :func:`repro.modules.apply._finalize`, after the
                          new state is built, before the consistency check
``server.wal.append``     :meth:`repro.server.wal.WriteAheadLog.append`,
                          before the record reaches the log (a crash here
                          loses only the unacknowledged request)
``server.snapshot``       :meth:`repro.server.registry.ManagedDatabase.
                          _write_snapshot`, before the atomic rewrite (the
                          WAL already holds every committed write)
``server.response``       the HTTP handler, before the response body is
                          written (``latency`` = slow client, ``io-error``
                          = mid-request client disconnect)
========================  ==================================================

Each point can be armed with an *action*:

* ``error``    — raise :class:`InjectedFault` (a plain ``RuntimeError``,
  deliberately outside the ``LogresError`` hierarchy);
* ``io-error`` — raise :class:`OSError` (what a failing disk raises);
* ``cancel``   — cooperatively cancel the run's
  :class:`~repro.engine.guards.ResourceGuard` (or raise
  :class:`~repro.errors.EvalBudgetExceeded` directly when the run has
  no guard);
* ``breach``   — raise :class:`~repro.errors.EvalBudgetExceeded`
  immediately (simulated guard breach);
* ``latency``  — ``time.sleep(delay)`` and continue.

Faults are armed either in-process (the :meth:`FaultInjector.inject`
context manager tests use) or from the environment::

    REPRO_FAULTS="storage.fsync=io-error" repro run ...
    REPRO_FAULTS="engine.iteration=cancel@3" repro run ...   # 3rd hit
    REPRO_FAULTS="engine.iteration=latency@2/0.05" ...       # 50 ms

The grammar is ``point=action[@nth][/delay]``, ``;`` or ``,`` separated;
``nth`` counts hits of that point (default 1 = first hit).  Production
call sites guard every hook behind ``if FAULTS.enabled`` so the disabled
path costs one attribute read.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import EvalBudgetExceeded

ENV_VAR = "REPRO_FAULTS"

ACTIONS = ("error", "io-error", "cancel", "breach", "latency")


class InjectedFault(RuntimeError):
    """An injected non-LOGRES failure (tests mid-apply crash handling)."""


@dataclass
class FaultSpec:
    """One armed failure point."""

    point: str
    action: str = "error"
    nth: int = 1          # fire on the nth hit of the point
    delay: float = 0.0    # latency action: seconds to sleep

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}"
                f" (expected one of {', '.join(ACTIONS)})"
            )
        if self.nth < 1:
            raise ValueError("fault nth counts from 1")


def parse_faults(text: str) -> list[FaultSpec]:
    """Parse the ``REPRO_FAULTS`` grammar into specs."""
    specs = []
    for token in text.replace(";", ",").split(","):
        token = token.strip()
        if not token:
            continue
        point, _, rest = token.partition("=")
        if not rest:
            raise ValueError(
                f"bad fault spec {token!r}: expected point=action"
            )
        rest, _, delay = rest.partition("/")
        action, _, nth = rest.partition("@")
        specs.append(FaultSpec(
            point=point.strip(),
            action=action.strip(),
            nth=int(nth) if nth else 1,
            delay=float(delay) if delay else 0.0,
        ))
    return specs


class FaultInjector:
    """The process-wide registry of armed failure points.

    ``enabled`` is False whenever no fault is armed; every production
    hook checks it before calling :meth:`fire`, so the cost of the
    harness in normal operation is a single attribute read.
    """

    def __init__(self):
        self._specs: dict[str, FaultSpec] = {}
        self._hits: dict[str, int] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def configure(self, specs) -> None:
        for spec in specs:
            self._specs[spec.point] = spec
            self._hits.setdefault(spec.point, 0)
        self.enabled = bool(self._specs)

    def configure_from_env(self, environ=None) -> None:
        text = (environ or os.environ).get(ENV_VAR)
        if text:
            self.configure(parse_faults(text))

    def clear(self) -> None:
        self._specs.clear()
        self._hits.clear()
        self.enabled = False

    def inject(self, point: str, action: str = "error", nth: int = 1,
               delay: float = 0.0):
        """Context manager arming one fault for the enclosed block."""
        return _Injection(
            self, FaultSpec(point, action=action, nth=nth, delay=delay)
        )

    def hits(self, point: str) -> int:
        return self._hits.get(point, 0)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, point: str, guard=None) -> None:
        """Trigger ``point``; call sites pass the run's guard (if any)
        so ``cancel`` faults stay cooperative."""
        spec = self._specs.get(point)
        if spec is None:
            return
        self._hits[point] = hit = self._hits.get(point, 0) + 1
        if hit != spec.nth:
            return
        if spec.action == "latency":
            time.sleep(spec.delay)
            return
        if spec.action == "cancel":
            if guard is not None:
                guard.cancel()
                return
            raise EvalBudgetExceeded(
                f"injected cancellation at {point!r}",
                budget="cancelled",
            )
        if spec.action == "breach":
            raise EvalBudgetExceeded(
                f"injected budget breach at {point!r}",
                budget="cancelled", limit=0, observed=hit,
            )
        if spec.action == "io-error":
            raise OSError(f"injected I/O fault at {point!r}")
        raise InjectedFault(f"injected fault at {point!r}")


class _Injection:
    def __init__(self, injector: FaultInjector, spec: FaultSpec):
        self._injector = injector
        self._spec = spec

    def __enter__(self) -> FaultInjector:
        self._injector.configure([self._spec])
        return self._injector

    def __exit__(self, *exc) -> None:
        self._injector._specs.pop(self._spec.point, None)
        self._injector._hits.pop(self._spec.point, None)
        self._injector.enabled = bool(self._injector._specs)


#: the process-wide injector every production hook consults.  Armed from
#: the environment at import time so CLI subprocesses (and the CI
#: fault-injection job) can inject without code changes.
FAULTS = FaultInjector()
FAULTS.configure_from_env()
