"""Methods and encapsulation over LOGRES modules (Section 5 future work).

The paper asks whether "the notions of methods and of encapsulation,
which are very popular in object-oriented systems, are supported within
LOGRES".  The answer this module implements: a *method* is a named,
parameterized RIDI module attached to a class.

* **Encapsulation** comes for free from RIDI semantics (Section 4.1):
  the method's helper rules and type equations join the evaluation but
  never become persistent — callers observe only the answer.
* **Dispatch** follows the ``isa`` hierarchy: invoking a method on an
  object of class ``C`` finds the definition on ``C`` or its nearest
  superclass (single-path lookup; the restricted multiple inheritance of
  Section 2.1 guarantees a unique hierarchy, and diamond ambiguities are
  reported).
* **Self-binding**: the method body refers to the receiver through the
  distinguished variable ``Self``, which the registry grounds by adding
  a receiver-selection literal.

Example::

    registry = MethodRegistry(db)
    registry.define("person", "descendants", '''
    goal
      ?- person(self Self, name N), member(X, desc(N)).
    ''')
    registry.call(oid, "descendants")

The receiver selection lives in the *goal*, where ``Self`` is grounded;
helper rules (evaluated RIDI, hence invisible to the caller) may define
auxiliary predicates the goal then filters by receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import Database
from repro.errors import LogresError, SchemaError
from repro.language.ast import Args, BuiltinLiteral, Constant, Goal, Var
from repro.language.parser import parse_source
from repro.modules.apply import apply_module
from repro.modules.module import Mode, Module
from repro.values.complex import Value
from repro.values.oids import Oid

SELF_VAR = Var("Self")


class MethodError(LogresError):
    """Unknown method, ambiguous dispatch, or a body without a goal."""


@dataclass(frozen=True)
class Method:
    """One method: a class name, a method name, and its module."""

    class_name: str
    name: str
    module: Module
    parameters: tuple[str, ...] = ()

    def __repr__(self) -> str:
        params = ", ".join(self.parameters)
        return f"{self.class_name}::{self.name}({params})"


@dataclass
class MethodRegistry:
    """Per-database registry of class methods."""

    db: Database
    _methods: dict[tuple[str, str], Method] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def define(
        self,
        class_name: str,
        name: str,
        source: str,
        parameters: tuple[str, ...] = (),
    ) -> Method:
        """Register a method.  ``source`` is a module body whose goal is
        the method's result; it may reference ``Self`` (the receiver) and
        the given parameter variables."""
        class_name = class_name.lower()
        if not self.db.schema.is_class(class_name):
            raise SchemaError(f"{class_name!r} is not a class")
        unit = parse_source(source)
        if unit.goal is None:
            raise MethodError(
                f"method {name!r} needs a goal (its return value)"
            )
        module = Module(
            name=f"{class_name}::{name}",
            rules=tuple(unit.rules),
            equations=tuple(unit.equations),
            isa=tuple(unit.isa),
            functions=tuple(unit.functions),
            goal=unit.goal,
        )
        method = Method(class_name, name.lower(), module,
                        tuple(p for p in parameters))
        self._methods[(class_name, method.name)] = method
        return method

    def methods_of(self, class_name: str) -> list[Method]:
        """Methods visible on a class, inherited ones included."""
        class_name = class_name.lower()
        chain = [class_name] + self.db.schema.superclasses(class_name)
        out: list[Method] = []
        seen: set[str] = set()
        for cls in chain:
            for (owner, mname), method in self._methods.items():
                if owner == cls and mname not in seen:
                    seen.add(mname)
                    out.append(method)
        return sorted(out, key=lambda m: m.name)

    def resolve(self, class_name: str, name: str) -> Method:
        """Dispatch: nearest definition along the isa chain."""
        class_name = class_name.lower()
        name = name.lower()
        chain = [class_name] + self.db.schema.superclasses(class_name)
        for level in _dispatch_levels(chain, self.db.schema):
            found = [
                self._methods[(c, name)]
                for c in level
                if (c, name) in self._methods
            ]
            if len(found) > 1:
                raise MethodError(
                    f"ambiguous method {name!r} on {class_name!r}:"
                    f" defined on {[m.class_name for m in found]}"
                )
            if found:
                return found[0]
        raise MethodError(
            f"no method {name!r} on {class_name!r} or its superclasses"
        )

    # ------------------------------------------------------------------
    def call(
        self,
        receiver: Oid,
        name: str,
        **arguments: Value,
    ) -> list[dict[str, Value]]:
        """Invoke a method on ``receiver``; returns the goal's answers."""
        owner = self._class_of(receiver)
        method = self.resolve(owner, name)
        module = _bind_receiver(method, receiver, arguments)
        result = apply_module(
            self.db.state, module, Mode.RIDI,
            semantics=self.db.semantics, config=self.db.config,
            oidgen=self.db.oidgen,
        )
        return result.answers or []

    def _class_of(self, receiver: Oid) -> str:
        """The most specific class containing the receiver."""
        instance = self.db.instance()
        candidates = [
            c for c in self.db.schema.class_names
            if receiver in instance.oids_of(c)
        ]
        if not candidates:
            raise MethodError(f"no object with oid {receiver!r}")
        # most specific = the one that is a subclass of all others
        for c in candidates:
            if all(self.db.schema.is_subclass(c, other)
                   for other in candidates):
                return c
        return candidates[0]


def _dispatch_levels(chain: list[str], schema) -> list[list[str]]:
    """Group the superclass chain into distance levels for dispatch."""
    levels: list[list[str]] = []
    remaining = list(chain)
    current = [chain[0]]
    while current:
        levels.append(current)
        nxt: list[str] = []
        for cls in current:
            for sup in schema.direct_superclasses(cls):
                if sup in remaining and sup not in nxt and \
                        all(sup not in lvl for lvl in levels):
                    nxt.append(sup)
        current = nxt
    return levels


def _bind_receiver(method: Method, receiver: Oid,
                   arguments: dict[str, Value]) -> Module:
    """Ground ``Self`` and the parameter variables in the method goal."""
    expected = set(method.parameters)
    given = {k.lower() for k in arguments}
    if expected != given:
        raise MethodError(
            f"method {method!r} takes parameters {sorted(expected)},"
            f" got {sorted(given)}"
        )
    bindings: list[BuiltinLiteral] = [
        BuiltinLiteral("=", (SELF_VAR, Constant(receiver)))
    ]
    for pname, value in arguments.items():
        bindings.append(
            BuiltinLiteral("=", (Var(pname.capitalize()), Constant(value)))
        )
    goal = method.module.goal
    assert goal is not None
    grounded = Goal(tuple(bindings) + goal.literals)
    return Module(
        name=method.module.name,
        rules=method.module.rules,
        equations=method.module.equations,
        isa=method.module.isa,
        functions=method.module.functions,
        goal=grounded,
    )
