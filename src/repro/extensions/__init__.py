"""Extensions beyond the paper's core: its Section 5 future-work items.

* :mod:`repro.extensions.methods` — methods and encapsulation on top of
  modules ("we will evaluate how effectively the notions of methods and
  of encapsulation ... are supported within LOGRES");
* :mod:`repro.extensions.updates` — translation of user-level update
  specifications into module applications ("translation of user-defined
  updates into module application").
"""

from repro.extensions.methods import Method, MethodRegistry
from repro.extensions.updates import (
    build_delete_module,
    build_insert_module,
    build_update_module,
)

__all__ = [
    "Method",
    "MethodRegistry",
    "build_delete_module",
    "build_insert_module",
    "build_update_module",
]
