"""Translating user-level updates into module applications.

Section 5 lists "translation of user-defined updates into module
application" as planned work; Section 4.2 sketches the encodings (adding
tuples = positive heads, deletion = negative heads, field updates = the
Example 4.2 pattern).  These builders generate the modules so callers
never hand-write update rules:

* :func:`build_insert_module` — a module of fact rules;
* :func:`build_delete_module` — guarded deletion rules;
* :func:`build_update_module` — the full Example 4.2 pattern: a scratch
  ``mod`` association marks updated tuples, new tuples are derived with
  recomputed fields, and stale originals are deleted.

All three return plain :class:`~repro.modules.module.Module` objects to
be applied with RIDV (or RADV to keep the rules).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.coerce import to_value
from repro.errors import SchemaError
from repro.language.ast import (
    Args,
    ArithExpr,
    BuiltinLiteral,
    Constant,
    Literal,
    Rule,
    Term,
    Var,
)
from repro.modules.module import Module
from repro.types.descriptors import TupleType
from repro.types.equations import Kind, TypeEquation
from repro.types.schema import Schema
from repro.values.complex import Value

#: an assignment expression: either a constant, or (op, operand) applied
#: to the current field value — ("+", 1) means field := field + 1.
Assignment = Value | tuple[str, Value]


def _require_association(schema: Schema, pred: str) -> None:
    if not schema.is_association(pred):
        raise SchemaError(
            f"update builders target associations; {pred!r} is not one"
        )


def build_insert_module(
    schema: Schema, pred: str, rows: list[Mapping[str, Value]],
    name: str = "",
) -> Module:
    """A module inserting the given tuples (positive-head fact rules)."""
    _require_association(schema, pred)
    eff = schema.effective_type(pred)
    rules = []
    for row in rows:
        labeled = []
        for label in eff.labels:
            if label not in row:
                raise SchemaError(
                    f"insert into {pred!r} misses attribute {label!r}"
                )
            labeled.append((label, Constant(to_value(row[label]))))
        rules.append(Rule(Literal(pred, Args(labeled=tuple(labeled)))))
    return Module(name=name or f"insert-{pred}", rules=tuple(rules))


def build_delete_module(
    schema: Schema, pred: str, where: Mapping[str, Assignment],
    name: str = "",
) -> Module:
    """A module deleting tuples matching ``where`` (negative head).

    ``where`` maps labels to constants, or to ``(op, value)`` comparison
    guards — ``{"d2": (">", 3)}`` deletes tuples with d2 > 3.
    """
    _require_association(schema, pred)
    tuple_var = Var("T")
    body, head_args = _where_clause(pred, tuple_var, where)
    head = Literal(pred, Args(tuple_var=tuple_var), negated=True)
    return Module(
        name=name or f"delete-{pred}",
        rules=(Rule(head, tuple(body)),),
    )


def build_update_module(
    schema: Schema,
    pred: str,
    where: Mapping[str, Assignment],
    assign: Mapping[str, Assignment],
    name: str = "",
) -> Module:
    """The Example 4.2 pattern as a generated module.

    ``where`` selects tuples (constants or comparison guards);
    ``assign`` maps labels to new constants or ``(op, operand)``
    arithmetic over the old value.  The generated module:

    1. derives the updated tuple, guarded by ``~mod(old)``;
    2. records the *old* field values in a scratch ``__upd_<pred>``
       association (so step 1 fires exactly once per original);
    3. deletes originals that match ``where`` and are recorded.
    """
    _require_association(schema, pred)
    eff = schema.effective_type(pred)
    for label in list(where) + list(assign):
        if not eff.has_label(label):
            raise SchemaError(
                f"{pred!r} has no attribute {label!r}"
            )
    scratch = f"__upd_{pred}"
    scratch_eq = TypeEquation(scratch, Kind.ASSOCIATION, eff)

    old_vars = {label: Var(f"V_{label}") for label in eff.labels}
    body: list = [
        Literal(pred, Args(labeled=tuple(
            (label, old_vars[label]) for label in eff.labels
        )))
    ]
    body += _guards(where, old_vars)
    # ~ __upd_pred(old values)
    body.append(Literal(
        scratch,
        Args(labeled=tuple(
            (label, old_vars[label]) for label in eff.labels
        )),
        negated=True,
    ))
    new_terms: dict[str, Term] = {}
    eq_binders: list[BuiltinLiteral] = []
    for label in eff.labels:
        if label in assign:
            spec = assign[label]
            fresh = Var(f"N_{label}")
            if isinstance(spec, tuple):
                op, operand = spec
                expr: Term = ArithExpr(
                    op, old_vars[label], Constant(to_value(operand))
                )
            else:
                expr = Constant(to_value(spec))
            eq_binders.append(BuiltinLiteral("=", (fresh, expr)))
            new_terms[label] = fresh
        else:
            new_terms[label] = old_vars[label]
    full_body = tuple(body) + tuple(eq_binders)

    derive = Rule(
        Literal(pred, Args(labeled=tuple(
            (label, new_terms[label]) for label in eff.labels
        ))),
        full_body,
        name=f"{pred}-update-derive",
    )
    # record the *new* tuples: exactly Example 4.2's MOD relation — a
    # tuple already recorded is itself a result of the update and must
    # neither be re-updated nor deleted
    record = Rule(
        Literal(scratch, Args(labeled=tuple(
            (label, new_terms[label]) for label in eff.labels
        ))),
        full_body,
        name=f"{pred}-update-record",
    )
    # deletion: stale originals — tuples matching `where` that are not
    # themselves recorded results
    del_body: list = [
        Literal(pred, Args(labeled=tuple(
            (label, old_vars[label]) for label in eff.labels
        ))),
    ]
    del_body += _guards(where, old_vars)
    del_body.append(Literal(
        scratch,
        Args(labeled=tuple(
            (label, old_vars[label]) for label in eff.labels
        )),
        negated=True,
    ))
    delete = Rule(
        Literal(pred, Args(labeled=tuple(
            (label, old_vars[label]) for label in eff.labels
        )), negated=True),
        tuple(del_body),
        name=f"{pred}-update-delete",
    )
    return Module(
        name=name or f"update-{pred}",
        rules=(derive, record, delete),
        equations=(scratch_eq,),
    )


def _guards(where: Mapping[str, Assignment],
            old_vars: Mapping[str, Var]) -> list[BuiltinLiteral]:
    out = []
    for label, spec in where.items():
        if isinstance(spec, tuple) and len(spec) == 1:
            # unary predicate guard, e.g. ("even",)
            out.append(BuiltinLiteral(spec[0], (old_vars[label],)))
        elif isinstance(spec, tuple):
            op, operand = spec
            out.append(BuiltinLiteral(
                op, (old_vars[label], Constant(to_value(operand)))
            ))
        else:
            out.append(BuiltinLiteral(
                "=", (old_vars[label], Constant(to_value(spec)))
            ))
    return out


def _where_clause(pred: str, tuple_var: Var,
                  where: Mapping[str, Assignment]):
    labeled_vars = {label: Var(f"V_{label}") for label in where}
    body: list = [Literal(pred, Args(
        labeled=tuple((label, var) for label, var in labeled_vars.items()),
        tuple_var=tuple_var,
    ))]
    body += _guards(where, labeled_vars)
    return body, labeled_vars
