"""The refinement preorder ``t1 ≼ t2`` (Appendix A).

A type ``t1`` is a refinement of ``t2`` iff one of the following holds:

1. ``t1`` is elementary or a name, and ``t1 = t2``;
2. ``t1`` is a domain/class/association name and ``Σ(t1) ≼ t2``;
3. ``t1`` and ``t2`` are both class names and ``Σ(t1) ≼ Σ(t2)``;
4. both are tuple types, every label of ``t2`` appears in ``t1``, and the
   ``t1`` field type refines the corresponding ``t2`` field type
   (``t1`` may have extra labels — width subtyping);
5-7. both are set / multiset / sequence types and the element type of
   ``t1`` refines that of ``t2``.

For checking ``isa`` legality between classes, clause 3 compares the
*effective* (inheritance-flattened) tuple types, so that
``STUDENT = (PERSON, SCHOOL)`` refines ``PERSON = (NAME, ADDRESS)`` once the
unlabeled ``PERSON`` occurrence is inlined.

Type equations may be recursive (``PERSON = (NAME, MOTHER: PERSON)``); the
check is coinductive — a pair assumed true on re-entry is accepted, giving
the greatest fixpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.types.descriptors import (
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import Kind

if TYPE_CHECKING:  # pragma: no cover
    from repro.types.schema import Schema


def is_refinement(
    t1: TypeDescriptor, t2: TypeDescriptor, schema: "Schema"
) -> bool:
    """True iff ``t1 ≼ t2`` under the equations of ``schema``."""
    return _refines(t1, t2, schema, set())


def types_compatible(
    t1: TypeDescriptor, t2: TypeDescriptor, schema: "Schema"
) -> bool:
    """Unification compatibility (Section 3.1): one refines the other."""
    return _refines(t1, t2, schema, set()) or _refines(t2, t1, schema, set())


def _expand(t: NamedType, schema: "Schema") -> TypeDescriptor:
    """One-step expansion Σ(t) of a named type.

    Classes expand to their *effective* tuple type (inheritance occurrences
    flattened) so that clause 3 compares attribute structure.
    """
    if schema.kind_of(t.name) is Kind.CLASS:
        return schema.effective_type(t.name)
    return schema.rhs_of(t.name)


def _refines(
    t1: TypeDescriptor,
    t2: TypeDescriptor,
    schema: "Schema",
    assumed: set[tuple[TypeDescriptor, TypeDescriptor]],
) -> bool:
    if t1 == t2 and isinstance(t1, (ElementaryType, NamedType)):
        return True  # clause 1
    key = (t1, t2)
    if key in assumed:
        return True  # coinductive hypothesis for recursive equations
    assumed = assumed | {key}

    if isinstance(t1, NamedType) and isinstance(t2, NamedType):
        k1, k2 = schema.kind_of(t1.name), schema.kind_of(t2.name)
        if k1 is Kind.CLASS and k2 is Kind.CLASS:
            # clause 3 — but first honour the declared isa order: a declared
            # subclass always refines its declared superclasses.
            if schema.is_subclass(t1.name, t2.name):
                return True
            return _refines(
                _expand(t1, schema), _expand(t2, schema), schema, assumed
            )
    if isinstance(t1, NamedType):
        return _refines(_expand(t1, schema), t2, schema, assumed)  # clause 2

    if isinstance(t1, TupleType) and isinstance(t2, TupleType):  # clause 4
        if len(t2.fields) > len(t1.fields):
            return False
        for f2 in t2.fields:
            if not t1.has_label(f2.label):
                return False
            if not _refines(t1.field(f2.label).type, f2.type, schema, assumed):
                return False
        return True

    for ctor in (SetType, MultisetType, SequenceType):  # clauses 5-7
        if isinstance(t1, ctor) and isinstance(t2, ctor):
            return _refines(t1.element, t2.element, schema, assumed)

    # A structural t1 never refines a named t2 other than through the class
    # clause above; domains denote subsets of their RHS, not supersets.
    return False
