"""LOGRES type system: descriptors, refinement, type equations, schemas.

This package implements Section 2 and Appendix A of the paper: the type
constructors (tuple, set, multiset, sequence), named domains / classes /
associations defined by *type equations*, the refinement preorder ``≼``,
and ``isa`` generalization hierarchies with restricted multiple
inheritance.
"""

from repro.types.descriptors import (
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import Kind, TypeEquation, IsaDeclaration, FunctionDecl
from repro.types.refinement import is_refinement, types_compatible
from repro.types.schema import Schema, SchemaBuilder

__all__ = [
    "BOOLEAN",
    "INTEGER",
    "REAL",
    "STRING",
    "ElementaryType",
    "FunctionDecl",
    "IsaDeclaration",
    "Kind",
    "MultisetType",
    "NamedType",
    "Schema",
    "SchemaBuilder",
    "SequenceType",
    "SetType",
    "TupleField",
    "TupleType",
    "TypeDescriptor",
    "TypeEquation",
    "is_refinement",
    "types_compatible",
]
