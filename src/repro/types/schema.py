"""LOGRES schemas: named type equations plus an ``isa`` hierarchy.

A schema (Appendix A, Definition 2) is a pair ``(Σ, isa)`` where ``Σ`` maps
every domain, class, and association name to its type descriptor and
``isa`` is a partial order over class names such that:

* domain descriptors contain no class names;
* ``C1 isa C2`` implies ``Σ(C1) ≼ Σ(C2)``;
* multiple inheritance is only allowed among classes sharing a common
  ancestor, so the oid universe partitions into disjoint hierarchies;
* associations never contain associations.

**Inheritance flattening.**  Following the paper's examples
(``STUDENT = (PERSON, SCHOOL); STUDENT isa PERSON`` makes ``name`` and
``address`` direct properties of ``STUDENT``), an occurrence of a
superclass in the RHS of a declared subclass is *inlined*: the superclass's
effective fields are spliced into the subclass's tuple type.  All other
class occurrences are oid references (object sharing).  Conflicting
inherited labels are renamed ``<superclass>_<label>`` (the paper's
"renaming policy").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError, SchemaError, TypeEquationError
from repro.types.descriptors import (
    ELEMENTARY_TYPES,
    ElementaryType,
    MultisetType,
    NamedType,
    SequenceType,
    SetType,
    TupleField,
    TupleType,
    TypeDescriptor,
)
from repro.types.equations import FunctionDecl, IsaDeclaration, Kind, TypeEquation


def _norm(name: str) -> str:
    return name.lower()


@dataclass
class Schema:
    """An immutable-by-convention validated LOGRES schema.

    Build one with :class:`SchemaBuilder` (or the parser); the constructor
    validates every structural property and raises
    :class:`~repro.errors.SchemaError` on the first violation.
    """

    equations: dict[str, TypeEquation]
    isa_declarations: tuple[IsaDeclaration, ...] = ()
    functions: dict[str, FunctionDecl] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._direct_supers: dict[str, list[IsaDeclaration]] = {}
        self._effective_cache: dict[str, TupleType] = {}
        for decl in self.isa_declarations:
            self._direct_supers.setdefault(decl.sub, []).append(decl)
        self._validate()

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        return _norm(name) in self.equations

    def kind_of(self, name: str) -> Kind:
        try:
            return self.equations[_norm(name)].kind
        except KeyError:
            raise SchemaError(f"unknown type name: {name!r}") from None

    def rhs_of(self, name: str) -> TypeDescriptor:
        try:
            return self.equations[_norm(name)].rhs
        except KeyError:
            raise SchemaError(f"unknown type name: {name!r}") from None

    def is_class(self, name: str) -> bool:
        eq = self.equations.get(_norm(name))
        return eq is not None and eq.kind is Kind.CLASS

    def is_association(self, name: str) -> bool:
        eq = self.equations.get(_norm(name))
        return eq is not None and eq.kind is Kind.ASSOCIATION

    def is_domain(self, name: str) -> bool:
        eq = self.equations.get(_norm(name))
        return eq is not None and eq.kind is Kind.DOMAIN

    @property
    def class_names(self) -> list[str]:
        return [n for n, e in self.equations.items() if e.kind is Kind.CLASS]

    @property
    def association_names(self) -> list[str]:
        return [
            n for n, e in self.equations.items() if e.kind is Kind.ASSOCIATION
        ]

    @property
    def domain_names(self) -> list[str]:
        return [n for n, e in self.equations.items() if e.kind is Kind.DOMAIN]

    @property
    def predicate_names(self) -> list[str]:
        """Names usable as predicates in rules: classes and associations."""
        return self.class_names + self.association_names

    # ------------------------------------------------------------------
    # isa hierarchy
    # ------------------------------------------------------------------
    def direct_superclasses(self, name: str) -> list[str]:
        return [d.sup for d in self._direct_supers.get(_norm(name), [])]

    def superclasses(self, name: str) -> list[str]:
        """All proper superclasses, nearest first, without duplicates."""
        out: list[str] = []
        frontier = [_norm(name)]
        while frontier:
            current = frontier.pop(0)
            for sup in self.direct_superclasses(current):
                if sup not in out:
                    out.append(sup)
                    frontier.append(sup)
        return out

    def subclasses(self, name: str) -> list[str]:
        """All proper subclasses of ``name``."""
        target = _norm(name)
        return [
            c for c in self.class_names if target in self.superclasses(c)
        ]

    def is_subclass(self, sub: str, sup: str) -> bool:
        """Reflexive-transitive ``isa``: is ``sub`` a subclass of ``sup``?"""
        sub, sup = _norm(sub), _norm(sup)
        return sub == sup or sup in self.superclasses(sub)

    def same_hierarchy(self, c1: str, c2: str) -> bool:
        """Do two classes belong to the same generalization hierarchy?"""
        return self.hierarchy_root(c1) == self.hierarchy_root(c2)

    def hierarchy_root(self, name: str) -> str:
        """The unique root class of ``name``'s generalization hierarchy."""
        name = _norm(name)
        maximal = [
            s
            for s in [name] + self.superclasses(name)
            if not self.direct_superclasses(s)
        ]
        if len(maximal) != 1:  # pragma: no cover - excluded by validation
            raise IsaError(
                f"class {name!r} has several hierarchy roots: {maximal}"
            )
        return maximal[0]

    @property
    def hierarchy_roots(self) -> list[str]:
        return [c for c in self.class_names if not self.direct_superclasses(c)]

    # ------------------------------------------------------------------
    # effective (inheritance-flattened) tuple types
    # ------------------------------------------------------------------
    def effective_type(self, name: str) -> TupleType:
        """The flattened tuple type of a class or association.

        Inheritance occurrences are spliced in; alias RHSs (a bare name)
        are expanded; oid-reference fields keep their :class:`NamedType`.
        """
        name = _norm(name)
        cached = self._effective_cache.get(name)
        if cached is not None:
            return cached
        result = self._compute_effective(name, frozenset())
        self._effective_cache[name] = result
        return result

    def _compute_effective(self, name: str, seen: frozenset[str]) -> TupleType:
        if name in seen:
            raise SchemaError(
                f"type equation of {name!r} is recursive through inheritance"
            )
        seen = seen | {name}
        eq = self.equations.get(name)
        if eq is None:
            raise SchemaError(f"unknown type name: {name!r}")
        rhs = eq.rhs
        if isinstance(rhs, NamedType):  # alias, e.g. the paper's IP = PAIR
            target = self.equations.get(_norm(rhs.name))
            if target is None:
                raise SchemaError(
                    f"{name!r} aliases unknown type {rhs.name!r}"
                )
            if isinstance(target.rhs, TupleType) or isinstance(
                target.rhs, NamedType
            ):
                return self._compute_effective(_norm(rhs.name), seen)
            raise SchemaError(
                f"{name!r} aliases {rhs.name!r}, whose RHS is not a tuple"
            )
        if not isinstance(rhs, TupleType):
            raise SchemaError(
                f"{name!r} is a {eq.kind} but its RHS is not a tuple type"
            )
        if eq.kind is Kind.ASSOCIATION:
            return rhs

        inherit_labels = self._inheritance_labels(name, rhs)
        out: list[TupleField] = []
        taken: set[str] = set()
        for f in rhs.fields:
            if f.label in inherit_labels:
                sup = inherit_labels[f.label]
                for inherited in self._compute_effective(sup, seen).fields:
                    label = inherited.label
                    if label in taken:
                        label = f"{sup}_{label}"  # renaming policy
                    if label in taken:
                        raise IsaError(
                            f"unresolvable label conflict {inherited.label!r}"
                            f" inheriting {sup!r} into {name!r}"
                        )
                    taken.add(label)
                    out.append(TupleField(label, inherited.type))
            else:
                if f.label in taken:
                    raise TypeEquationError(
                        f"duplicate label {f.label!r} in {name!r}"
                    )
                taken.add(f.label)
                out.append(f)
        return TupleType(tuple(out))

    def _inheritance_labels(self, name: str, rhs: TupleType) -> dict[str, str]:
        """Map RHS labels of class ``name`` to the superclass they inherit."""
        mapping: dict[str, str] = {}
        for decl in self._direct_supers.get(name, ()):
            if decl.label is not None:
                label = _norm(decl.label)
                if not rhs.has_label(label):
                    raise IsaError(
                        f"{name} {decl.label} isa {decl.sup}: no component"
                        f" labeled {decl.label!r} in the RHS of {name!r}"
                    )
            else:
                # the default occurrence is the component labeled by the
                # superclass's own name
                label = _norm(decl.sup)
                if not rhs.has_label(label):
                    raise IsaError(
                        f"{name} isa {decl.sup}: the RHS of {name!r} has no"
                        f" occurrence of {decl.sup!r} to inherit from"
                    )
            fld = rhs.field(label)
            if not (
                isinstance(fld.type, NamedType)
                and _norm(fld.type.name) == _norm(decl.sup)
            ):
                raise IsaError(
                    f"{name} isa {decl.sup}: component {label!r} has type"
                    f" {fld.type!r}, not {decl.sup!r}"
                )
            mapping[label] = _norm(decl.sup)
        return mapping

    def field_type(self, pred: str, label: str) -> TypeDescriptor:
        """Declared type of ``label`` in the effective tuple of ``pred``."""
        eff = self.effective_type(pred)
        try:
            return eff.field(_norm(label)).type
        except KeyError:
            raise SchemaError(
                f"predicate {pred!r} has no argument labeled {label!r}"
            ) from None

    def reference_fields(self, pred: str) -> list[TupleField]:
        """Effective fields of ``pred`` holding oid references to classes."""
        out = []
        for f in self.effective_type(pred).fields:
            if isinstance(f.type, NamedType) and self.is_class(f.type.name):
                out.append(f)
        return out

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for name, eq in self.equations.items():
            if name != eq.name:
                raise SchemaError(
                    f"equation key {name!r} does not match name {eq.name!r}"
                )
            if name in ELEMENTARY_TYPES:
                raise TypeEquationError(
                    f"{name!r} shadows an elementary type"
                )
            self._check_references(eq)
        self._check_isa()
        # computing every effective type surfaces alias/flattening errors
        for name, eq in self.equations.items():
            if eq.kind is not Kind.DOMAIN:
                self.effective_type(name)
        self._check_functions()

    def _check_references(self, eq: TypeEquation) -> None:
        for ref in sorted(eq.rhs.named_references()):
            if ref in ELEMENTARY_TYPES:
                continue
            target = self.equations.get(_norm(ref))
            if target is None:
                raise SchemaError(
                    f"equation for {eq.name!r} references unknown type"
                    f" {ref!r}"
                )
            if eq.kind is Kind.DOMAIN and target.kind is not Kind.DOMAIN:
                raise TypeEquationError(
                    f"domain {eq.name!r} references {target.kind}"
                    f" {ref!r}; domains may only use domains and"
                    " elementary types"
                )
            if target.kind is Kind.ASSOCIATION:
                # associations may never be nested; a class may alias an
                # association only as its entire RHS (e.g. IP = PAIR).
                is_alias = (
                    isinstance(eq.rhs, NamedType)
                    and _norm(eq.rhs.name) == _norm(ref)
                )
                if eq.kind is Kind.ASSOCIATION or not is_alias:
                    raise TypeEquationError(
                        f"{eq.kind} {eq.name!r} contains association"
                        f" {ref!r}; associations cannot be nested"
                    )

    def _check_isa(self) -> None:
        for decl in self.isa_declarations:
            for endpoint in (decl.sub, decl.sup):
                if not self.has(endpoint):
                    raise IsaError(
                        f"isa declaration {decl!r} references unknown"
                        f" type {endpoint!r}"
                    )
                if not self.is_class(endpoint):
                    raise IsaError(
                        f"isa declaration {decl!r}: {endpoint!r} is not a"
                        " class"
                    )
            if _norm(decl.sub) == _norm(decl.sup):
                raise IsaError(f"reflexive isa declaration: {decl!r}")
        # acyclicity
        for c in self.class_names:
            if c in self.superclasses(c):
                raise IsaError(f"isa cycle through class {c!r}")
        # unique hierarchy root (disjoint oid universes; restricted
        # multiple inheritance)
        for c in self.class_names:
            maximal = {
                s
                for s in [c] + self.superclasses(c)
                if not self.direct_superclasses(s)
            }
            if len(maximal) != 1:
                raise IsaError(
                    f"class {c!r} inherits from multiple hierarchies"
                    f" {sorted(maximal)}; multiple inheritance requires a"
                    " common ancestor"
                )
        # refinement: Σ(sub) ≼ Σ(sup)
        from repro.types.refinement import is_refinement

        for decl in self.isa_declarations:
            sub_t = self.effective_type(decl.sub)
            sup_t = self.effective_type(decl.sup)
            if not is_refinement(sub_t, sup_t, self):
                raise IsaError(
                    f"{decl!r} violates refinement: {sub_t!r} does not"
                    f" refine {sup_t!r}"
                )

    def _check_functions(self) -> None:
        for fname, decl in self.functions.items():
            if fname != _norm(decl.name):
                raise SchemaError(
                    f"function key {fname!r} does not match {decl.name!r}"
                )
            if self.has(fname):
                raise SchemaError(
                    f"function {fname!r} shadows a type of the same name"
                )
            if not isinstance(decl.result, SetType):
                raise TypeEquationError(
                    f"function {fname!r} must return a set type,"
                    f" got {decl.result!r}"
                )
            for t in decl.arg_types + (decl.result,):
                for ref in sorted(t.named_references()):
                    if ref not in ELEMENTARY_TYPES and not self.has(ref):
                        raise SchemaError(
                            f"function {fname!r} references unknown type"
                            f" {ref!r}"
                        )

    # ------------------------------------------------------------------
    # composition (used by module application, Section 4.1)
    # ------------------------------------------------------------------
    def union(self, other: "Schema") -> "Schema":
        """``S0 ∪ SM``: add the other schema's equations and declarations.

        A name defined in both with different RHSs is an error; identical
        redefinitions are tolerated.
        """
        equations = dict(self.equations)
        for name, eq in other.equations.items():
            if name in equations and equations[name] != eq:
                raise SchemaError(
                    f"conflicting redefinition of {name!r} in schema union"
                )
            equations[name] = eq
        isa = list(self.isa_declarations)
        for decl in other.isa_declarations:
            if decl not in isa:
                isa.append(decl)
        functions = dict(self.functions)
        for fname, decl in other.functions.items():
            if fname in functions and functions[fname] != decl:
                raise SchemaError(
                    f"conflicting redefinition of function {fname!r}"
                )
            functions[fname] = decl
        return Schema(equations, tuple(isa), functions)

    def difference(self, other: "Schema") -> "Schema":
        """``S0 − SM``: drop the other schema's equations and declarations."""
        equations = {
            n: eq for n, eq in self.equations.items()
            if n not in other.equations
        }
        isa = tuple(
            d
            for d in self.isa_declarations
            if d not in other.isa_declarations
            and d.sub in equations
            and d.sup in equations
        )
        functions = {
            n: f for n, f in self.functions.items() if n not in other.functions
        }
        return Schema(equations, isa, functions)

    def __repr__(self) -> str:
        return (
            f"Schema({len(self.domain_names)} domains,"
            f" {len(self.class_names)} classes,"
            f" {len(self.association_names)} associations,"
            f" {len(self.isa_declarations)} isa,"
            f" {len(self.functions)} functions)"
        )


class SchemaBuilder:
    """Fluent construction of schemas from Python code.

    >>> schema = (
    ...     SchemaBuilder()
    ...     .domain("name", STRING)
    ...     .clazz("person", ("name", "name"), ("address", STRING))
    ...     .clazz("student", ("person", "person"), ("school", STRING))
    ...     .isa("student", "person")
    ...     .build()
    ... )

    Field types may be :class:`TypeDescriptor` instances, names of
    previously declared types (strings), or the elementary names
    ``"integer"``, ``"string"``, ``"real"``, ``"boolean"``.
    """

    def __init__(self) -> None:
        self._equations: dict[str, TypeEquation] = {}
        self._isa: list[IsaDeclaration] = []
        self._functions: dict[str, FunctionDecl] = {}

    # -- type coercion --------------------------------------------------
    def _coerce(self, t) -> TypeDescriptor:
        if isinstance(t, TypeDescriptor):
            return t
        if isinstance(t, str):
            lowered = _norm(t)
            if lowered in ELEMENTARY_TYPES:
                return ELEMENTARY_TYPES[lowered]
            return NamedType(lowered)
        if isinstance(t, set) or isinstance(t, frozenset):
            (elem,) = t
            return SetType(self._coerce(elem))
        if isinstance(t, list):
            (elem,) = t
            return MultisetType(self._coerce(elem))
        if isinstance(t, tuple):
            return TupleType(
                tuple(
                    TupleField(_norm(label), self._coerce(ft))
                    for label, ft in t
                )
            )
        raise TypeEquationError(f"cannot interpret {t!r} as a type")

    def _tuple_rhs(self, fields) -> TypeDescriptor:
        if len(fields) == 1 and isinstance(fields[0], (str, TypeDescriptor)):
            # alias form: clazz("ip", "pair")
            return self._coerce(fields[0])
        return TupleType(
            tuple(
                TupleField(_norm(label), self._coerce(ft))
                for label, ft in fields
            )
        )

    # -- declarations ----------------------------------------------------
    def domain(self, name: str, rhs) -> "SchemaBuilder":
        self._add(TypeEquation(_norm(name), Kind.DOMAIN, self._coerce(rhs)))
        return self

    def clazz(self, name: str, *fields) -> "SchemaBuilder":
        self._add(
            TypeEquation(_norm(name), Kind.CLASS, self._tuple_rhs(fields))
        )
        return self

    def association(self, name: str, *fields) -> "SchemaBuilder":
        self._add(
            TypeEquation(
                _norm(name), Kind.ASSOCIATION, self._tuple_rhs(fields)
            )
        )
        return self

    def isa(self, sub: str, sup: str, label: str | None = None
            ) -> "SchemaBuilder":
        self._isa.append(
            IsaDeclaration(
                _norm(sub), _norm(sup), _norm(label) if label else None
            )
        )
        return self

    def function(
        self, name: str, arg_types, element_type, arg_labels=None
    ) -> "SchemaBuilder":
        args = tuple(self._coerce(t) for t in arg_types)
        labels = tuple(
            _norm(l) for l in (arg_labels or
                               [f"arg{i}" for i in range(len(args))])
        )
        self._functions[_norm(name)] = FunctionDecl(
            _norm(name), args, SetType(self._coerce(element_type)), labels
        )
        return self

    def _add(self, eq: TypeEquation) -> None:
        if eq.name in self._equations:
            raise TypeEquationError(f"duplicate type equation for {eq.name!r}")
        self._equations[eq.name] = eq

    def build(self) -> Schema:
        return Schema(dict(self._equations), tuple(self._isa),
                      dict(self._functions))
