"""Type equations, ``isa`` declarations, and data-function declarations.

A LOGRES schema is a set of *type equations* ``NAME = RHS`` partitioned into
three sections (domains, classes, associations), a set of ``isa``
declarations between classes, and a set of set-valued data-function
declarations (Section 2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.types.descriptors import SetType, TypeDescriptor


class Kind(enum.Enum):
    """Which section of the schema a type equation belongs to."""

    DOMAIN = "domain"
    CLASS = "class"
    ASSOCIATION = "association"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class TypeEquation:
    """One equation ``name = rhs`` in the given schema section.

    ``span`` is the source location of the equation when it was parsed
    from text (``None`` for programmatically built equations); it is
    excluded from equality so equations from different files still
    compare structurally.
    """

    name: str
    kind: Kind
    rhs: TypeDescriptor
    span: object | None = field(default=None, compare=False)

    def __repr__(self) -> str:
        return f"{self.name} = {self.rhs!r}  [{self.kind}]"


@dataclass(frozen=True, slots=True)
class IsaDeclaration:
    """A generalization edge ``sub isa sup``.

    ``label`` selects which occurrence of ``sup`` in the RHS of ``sub``
    carries the inheritance when the RHS mentions the supertype more than
    once (the paper's ``EMPL emp ISA PERSON`` form).  ``None`` means the
    (unique) unlabeled or type-named occurrence.
    """

    sub: str
    sup: str
    label: str | None = None

    def __repr__(self) -> str:
        via = f" (via {self.label})" if self.label else ""
        return f"{self.sub} isa {self.sup}{via}"


@dataclass(frozen=True, slots=True)
class FunctionDecl:
    """A set-valued data function ``F: T1 -> {T2}`` (Section 2.1).

    ``arg_types`` may be empty — nullary functions name the extension of a
    type (the paper's ``JUNIOR -> {PERSON}``).  The result type must be a
    set type.
    """

    name: str
    arg_types: tuple[TypeDescriptor, ...]
    result: SetType
    arg_labels: tuple[str, ...] = field(default=())

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    @property
    def element_type(self) -> TypeDescriptor:
        return self.result.element

    def backing_predicate(self) -> str:
        """Name of the hidden association that stores the function graph."""
        return f"__fn_{self.name}"

    def __repr__(self) -> str:
        args = ", ".join(repr(t) for t in self.arg_types)
        return f"{self.name}: ({args}) -> {self.result!r}"
