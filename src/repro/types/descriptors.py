"""Type descriptors (Appendix A, Definition 1).

The set ``T`` of LOGRES type descriptors is built from:

a. the elementary types (integer, string — plus real and boolean, which the
   paper explicitly allows to be added), and names of domains, classes and
   associations (represented uniformly as :class:`NamedType`);
b. tuple types ``(L1: t1, ..., Lk: tk)`` with distinct labels;
c. set types ``{t}``;
d. multiset types ``[t]``;
e. sequence types ``<t>``.

Descriptors are immutable and hashable so they can key dictionaries and
participate in memoized refinement checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TypeEquationError


class TypeDescriptor:
    """Abstract base of all type descriptors."""

    __slots__ = ()

    def walk(self):
        """Yield this descriptor and every descriptor nested inside it."""
        yield self

    def named_references(self) -> set[str]:
        """Names of domains/classes/associations referenced anywhere."""
        return {d.name for d in self.walk() if isinstance(d, NamedType)}


@dataclass(frozen=True, slots=True)
class ElementaryType(TypeDescriptor):
    """A built-in elementary type: integer, string, real, or boolean."""

    name: str

    def __repr__(self) -> str:
        return self.name.upper()


INTEGER = ElementaryType("integer")
STRING = ElementaryType("string")
REAL = ElementaryType("real")
BOOLEAN = ElementaryType("boolean")

ELEMENTARY_TYPES: dict[str, ElementaryType] = {
    t.name: t for t in (INTEGER, STRING, REAL, BOOLEAN)
}


@dataclass(frozen=True, slots=True)
class NamedType(TypeDescriptor):
    """A reference, by name, to a domain, class, or association.

    Whether the name denotes a domain, class, or association is resolved
    against a :class:`~repro.types.schema.Schema`.
    """

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class TupleField:
    """One labeled component of a tuple type."""

    label: str
    type: TypeDescriptor

    def __repr__(self) -> str:
        return f"{self.label}: {self.type!r}"


@dataclass(frozen=True, slots=True, init=False)
class TupleType(TypeDescriptor):
    """A tuple (record) type with distinct labels, ``(L1: t1, ..., Lk: tk)``.

    ``k = 0`` is legal (the empty tuple type).
    """

    fields: tuple[TupleField, ...]

    def __init__(self, fields):
        fields = tuple(
            f if isinstance(f, TupleField) else TupleField(*f) for f in fields
        )
        labels = [f.label for f in fields]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise TypeEquationError(
                f"duplicate labels in tuple type: {', '.join(duplicates)}"
            )
        object.__setattr__(self, "fields", fields)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(f.label for f in self.fields)

    def field(self, label: str) -> TupleField:
        for f in self.fields:
            if f.label == label:
                return f
        raise KeyError(label)

    def has_label(self, label: str) -> bool:
        return any(f.label == label for f in self.fields)

    def walk(self):
        yield self
        for f in self.fields:
            yield from f.type.walk()

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.fields)
        return f"({inner})"


@dataclass(frozen=True, slots=True)
class SetType(TypeDescriptor):
    """A finite-set type ``{t}``."""

    element: TypeDescriptor

    def walk(self):
        yield self
        yield from self.element.walk()

    def __repr__(self) -> str:
        return f"{{{self.element!r}}}"


@dataclass(frozen=True, slots=True)
class MultisetType(TypeDescriptor):
    """A multiset (set with duplicates) type ``[t]``."""

    element: TypeDescriptor

    def walk(self):
        yield self
        yield from self.element.walk()

    def __repr__(self) -> str:
        return f"[{self.element!r}]"


@dataclass(frozen=True, slots=True)
class SequenceType(TypeDescriptor):
    """A sequence (ordered collection) type ``<t>``."""

    element: TypeDescriptor

    def walk(self):
        yield self
        yield from self.element.walk()

    def __repr__(self) -> str:
        return f"<{self.element!r}>"
