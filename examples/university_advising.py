"""University advising: isa hierarchies, object sharing, oid invention.

Reproduces the Example 3.1 / 3.4 scenario: PERSON with STUDENT and
PROFESSOR subclasses (one oid per person across the hierarchy), schools
whose deans are shared professor objects, the ADVISES association, and
the "interesting pair" computation that promotes association tuples to
objects with invented oids.

Run:  python examples/university_advising.py
"""

from repro import NIL, Database, Semantics

UNIVERSITY = """
domains
  name = string.
classes
  person = (name, address: string).
  school = (school_name: name, kind: string, dean: professor).
  student = (person, studschool: school).
  professor = (person, course: string, profschool: school).
  namesake = (stud_name: name, prof_name: name).
  student isa person.
  professor isa person.
associations
  advises = (prof: professor, stud: student).
  ip = (stud_name: name, prof_name: name).
rules
  % interesting pairs: advisor and advisee sharing a name, computed as
  % an association first (duplicate control), then objectified
  ip(stud_name N, prof_name N) <- advises(prof P, stud S),
                                  professor(self P, name N),
                                  student(self S, name N).
  namesake(X) <- ip(X).
"""


def main():
    db = Database.from_source(UNIVERSITY, semantics=Semantics.STRATIFIED)

    polimi = db.insert("school", school_name="polimi", kind="public",
                       dean=NIL)
    ceri = db.insert("professor", name="ceri", address="milano",
                     course="databases", profschool=polimi)
    tanca = db.insert("professor", name="tanca", address="milano",
                      course="logic", profschool=polimi)

    students = {}
    for sname in ["rossi", "ceri", "bianchi"]:
        students[sname] = db.insert(
            "student", name=sname, address="milano", studschool=polimi
        )
    db.insert("advises", prof=ceri, stud=students["ceri"])
    db.insert("advises", prof=tanca, stud=students["rossi"])

    # elect the dean after the professor objects exist (nil was legal
    # inside the class meanwhile — Section 2.1)
    db.state.edb.add_object(
        "school", polimi,
        db.objects("school")[polimi].with_field("dean", ceri),
    )
    db._instance_cache = None
    assert db.check() == []

    print("Everyone is a person (isa oid sharing):")
    for oid, value in sorted(db.objects("person").items(),
                             key=lambda kv: kv[0].number):
        roles = [c for c in ("student", "professor")
                 if oid in db.objects(c)]
        print(f"  {value['name']:8} roles={roles or ['person']}")

    print("\nAdvising pairs (navigating oid references):")
    for answer in db.query(
        "?- advises(prof P, stud S), professor(self P, name PN),"
        " student(self S, name SN)."
    ):
        print(f"  {answer['PN']} advises {answer['SN']}")

    print("\nThe dean, reached through the school's reference:")
    for answer in db.query(
        "?- school(school_name SN, dean(name DN, course C))."
    ):
        print(f"  dean of {answer['SN']}: {answer['DN']} ({answer['C']})")

    print("\nInteresting pairs promoted to objects (oid invention):")
    for oid, value in db.objects("namesake").items():
        print(f"  namesake object {oid}: student and professor both"
              f" named {value['stud_name']!r}")

    total = len(db.objects("namesake"))
    print(f"\n{total} namesake object(s);"
          " duplicates were eliminated by the association stage.")


if __name__ == "__main__":
    main()
