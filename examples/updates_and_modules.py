"""Modules, queries and updates: the six application modes (Section 4).

Walks one database through the full Section 4 repertoire:

* RIDV — Example 4.1's trigger update and Example 4.2's field update
  through deletion heads;
* RIDI — an ordinary query whose rules and types vanish afterwards;
* RADI / RDDI — installing and removing persistent rules;
* RADV / RDDV — rule changes combined with EDB updates;
* a passive constraint (denial) rejecting an inconsistent application.

Run:  python examples/updates_and_modules.py
"""

from repro import Database, Mode, Module
from repro.errors import ModuleApplicationError


def main():
    db = Database.from_source("""
    associations
      italian = (n: string).
      roman = (n: string).
      p = (d1: integer, d2: integer).
    """)
    db.insert("italian", n="sara")
    for i in range(1, 5):
        db.insert("p", d1=i, d2=i)

    # ------------------------------------------------------------- RIDV
    trigger = Module.from_source("""
    rules
      italian(n "luca").
      roman(n "ugo").
      italian(X) <- roman(X).
    """, name="example-4.1")
    db.run_module(trigger, Mode.RIDV)
    print("After Example 4.1 (RIDV):")
    print("  italian =", sorted(t["n"] for t in db.tuples("italian")))
    print("  roman   =", sorted(t["n"] for t in db.tuples("roman")))

    update = Module.from_source("""
    associations
      mod = (d1: integer, d2: integer).
    rules
      p(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                       ~mod(d1 X, d2 Y).
      mod(d1 X, d2 Z) <- p(d1 X, d2 Y), even(X), Z = Y + 1,
                         ~mod(d1 X, d2 Y).
      ~p(Y) <- p(Y, d1 X), even(X), ~mod(Y).
    """, name="example-4.2")
    db.run_module(update, Mode.RIDV)
    print("\nAfter Example 4.2 (RIDV, deletion heads):")
    print("  p =", sorted((t["d1"], t["d2"]) for t in db.tuples("p")))

    # ------------------------------------------------------------- RIDI
    query = Module.from_source("""
    rules
      compatriot(a X, b Y) <- italian(n X), italian(n Y), X != Y.
    associations
      compatriot = (a: string, b: string).
    goal
      ?- compatriot(a "sara", b B).
    """, name="query")
    result = db.run_module(query, Mode.RIDI)
    print("\nRIDI query answers (state untouched, module types"
          " temporary):")
    for answer in sorted(result.answers, key=str):
        print("  sara shares a country with", answer["B"])
    assert not db.schema.has("compatriot")

    # ------------------------------------------------------ RADI + RDDI
    lombard_rules = Module.from_source("""
    associations
      lombard = (n: string).
    rules
      lombard(X) <- italian(X).
    """, name="lombards")
    db.run_module(lombard_rules, Mode.RADI)
    print("\nAfter RADI, 'lombard' is derived intensionally:",
          sorted(t["n"] for t in db.tuples("lombard")))
    db.run_module(lombard_rules, Mode.RDDI)
    print("After RDDI the rule and its type equation are gone:",
          not db.schema.has("lombard"))

    # ------------------------------------------------------------- RADV
    censor = Module.from_source("""
    rules
      ~roman(n "ugo") <- roman(n "ugo").
    """, name="censor")
    db.run_module(censor, Mode.RADV)
    print("\nAfter RADV (update + persistent rule):"
          " roman =", sorted(t["n"] for t in db.tuples("roman")))

    # -------------------------------------------- rejected application
    poison = Module.from_source("""
    rules
      roman(n "sara").
      <- italian(n X), roman(n X).
    """, name="poison")
    try:
        db.run_module(poison, Mode.RADV)
    except ModuleApplicationError as exc:
        print("\nInconsistent module correctly rejected:")
        print("  ", str(exc).splitlines()[0][:74])
    print("  state preserved:",
          sorted(t["n"] for t in db.tuples("roman")))


if __name__ == "__main__":
    main()
