"""Quickstart: the football database of Example 2.1.

Builds the paper's running schema — a complex SCORE domain, PLAYER
objects with role sets, TEAM objects holding a *sequence* of base
players and a *set* of substitutes (object sharing through oids), and a
GAME association — then populates it and runs a few queries.

Run:  python examples/quickstart.py
"""

from repro import Database

FOOTBALL = """
domains
  name = string.
  role = integer.
  date = string.
  score = (home: integer, guest: integer).
classes
  player = (name, roles: {role}).
  team = (team_name: name, base_players: <player>, substitutes: {player}).
associations
  game = (h_team: team, g_team: team, date, score).
"""


def main():
    db = Database.from_source(FOOTBALL)

    # -- players (objects with system-managed oids) ---------------------
    baggio = db.insert("player", name="baggio", roles={9, 10})
    maldini = db.insert("player", name="maldini", roles={3})
    zenga = db.insert("player", name="zenga", roles={1})
    bench = db.insert("player", name="rizzitelli", roles={9, 11})

    # -- teams: sequences keep order, sets don't ------------------------
    milan = db.insert(
        "team",
        team_name="milan",
        base_players=[maldini, baggio, bench],
        substitutes={zenga},
    )
    inter = db.insert(
        "team",
        team_name="inter",
        base_players=[zenga, bench],  # object sharing: bench plays twice
        substitutes=set(),
    )

    # -- a game with a complex-domain score ------------------------------
    db.insert(
        "game",
        h_team=milan,
        g_team=inter,
        date="1990-05-23",
        score={"home": 2, "guest": 1},
    )

    # the generated referential constraints hold
    assert db.check() == []

    print("Teams and their rosters:")
    for oid, team in sorted(db.objects("team").items(),
                            key=lambda kv: kv[1]["team_name"]):
        base = [db.objects("player")[p]["name"]
                for p in team["base_players"]]
        subs = sorted(db.objects("player")[p]["name"]
                      for p in team["substitutes"])
        print(f"  {team['team_name']}: base={base} substitutes={subs}")

    print("\nGames decided at home:")
    for answer in db.query(
        "?- game(h_team(team_name H), g_team(team_name G),"
        " score(home SH, guest SG)), SH > SG."
    ):
        print(f"  {answer['H']} beat {answer['G']}"
              f" {answer['SH']}-{answer['SG']}")

    print("\nPlayers fielded by more than one team (object sharing):")
    for answer in db.query(
        "?- team(team_name T1, base_players B1),"
        " team(team_name T2, base_players B2),"
        " T1 < T2, member(P, B1), member(P, B2),"
        " player(self P, name N)."
    ):
        print(f"  {answer['N']} appears for {answer['T1']}"
              f" and {answer['T2']}")


if __name__ == "__main__":
    main()
