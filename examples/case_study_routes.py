"""Case study: route planning with sequence values.

A second §5-style case study exercising the sequence constructor end to
end: routes through a one-way transit network are accumulated as
*sequence* values with the ``append`` built-in, then inspected with
``first`` / ``last`` / ``length``.  The network is acyclic, so the route
relation closes finitely — the same duplicate-elimination argument as the
powerset example keeps the fixpoint bounded.

Run:  python examples/case_study_routes.py
"""

from repro import Database

NETWORK = """
domains
  station = string.
classes
  stop = (station, zone: integer).
associations
  hop = (src: station, dst: station).
  route = (path: <station>).
  summary = (origin: station, dest: station, stops: integer).
rules
  % a route starts at any hop...
  route(path P) <- hop(src X, dst Y), E = <>,
                   append(E, X, P1), append(P1, Y, P).
  % ...and extends along further hops
  route(path P) <- route(path Q), last(Q, X), hop(src X, dst Y),
                   append(Q, Y, P).
  summary(origin O, dest D, stops N) <- route(path P), first(P, O),
                                        last(P, D), length(P, N).
"""


def main():
    db = Database.from_source(NETWORK)
    for z, name in enumerate(["duomo", "cadorna", "garibaldi",
                              "centrale", "loreto", "lambrate"]):
        db.insert("stop", station=name, zone=z % 3 + 1)
    for src, dst in [
        ("duomo", "cadorna"), ("duomo", "centrale"),
        ("cadorna", "garibaldi"), ("garibaldi", "centrale"),
        ("centrale", "loreto"), ("loreto", "lambrate"),
    ]:
        db.insert("hop", src=src, dst=dst)

    routes = sorted(db.tuples("route"),
                    key=lambda t: (len(t["path"]), repr(t["path"])))
    print(f"{len(routes)} routes through the network; the longest:")
    longest = max(routes, key=lambda t: len(t["path"]))
    print("  " + " -> ".join(longest["path"]))

    print("\nAll ways from duomo to loreto:")
    for t in routes:
        path = list(t["path"])
        if path[0] == "duomo" and path[-1] == "loreto":
            print("  " + " -> ".join(path))

    print("\nRoute summaries ending at lambrate:")
    for answer in sorted(
        db.query('?- summary(origin O, dest "lambrate", stops N).'),
        key=lambda a: a["N"],
    ):
        print(f"  from {answer['O']}: {answer['N']} stations")


if __name__ == "__main__":
    main()
