"""The ALGRES substrate and the LOGRES-to-ALGRES compiler (Section 5).

Shows the layer the paper prototypes on: the extended (NF²) relational
algebra with its liberal closure operator, and the translation that
compiles a LOGRES program into algebra plans.  The same transitive
closure is computed three ways — hand-written algebra, compiled plan,
native LOGRES engine — and checked to agree.

Run:  python examples/algres_pipeline.py
"""

from repro import Engine, parse_source
from repro.algres import (
    Aggregate,
    Catalog,
    Closure,
    Join,
    Nest,
    Project,
    Relation,
    Rename,
    Scan,
    evaluate,
)
from repro.compiler import compile_program
from repro.types.descriptors import STRING
from repro.workloads import random_edges

TC_SOURCE = """
associations
  parent = (par: string, chil: string).
  anc = (a: string, d: string).
rules
  anc(a X, d Y) <- parent(par X, chil Y).
  anc(a X, d Z) <- parent(par X, chil Y), anc(a Y, d Z).
"""


def hand_written_plan():
    """Transitive closure as an explicit algebra expression."""
    base = Rename(Scan("parent"), {"par": "a", "chil": "d"})
    step = Project(
        Join(
            Rename(Scan("$iter"), {"d": "mid"}),
            Rename(Scan("parent"), {"par": "mid", "chil": "d"}),
        ),
        "a", "d",
    )
    return Closure(base, step)


def main():
    edb = random_edges(20, 35, seed=99)
    unit = parse_source(TC_SOURCE)
    schema, program = unit.schema(), unit.program()

    # -- route 1: hand-written ALGRES plan -------------------------------
    rows = [
        dict(par=f.value["par"], chil=f.value["chil"])
        for f in edb.facts_of("parent")
    ]
    catalog = Catalog({
        "parent": Relation.build(
            "parent", [("par", STRING), ("chil", STRING)], rows
        )
    })
    algebra_result = evaluate(hand_written_plan(), catalog)
    print(f"hand-written algebra : {len(algebra_result)} closure rows")

    # -- route 2: compiled LOGRES program ---------------------------------
    compiled = compile_program(program, schema)
    print("compiled plans:")
    for pred, plan in compiled.plans:
        print(f"  {pred} := {plan!r}"[:78])
    compiled_result = compiled.run(edb)
    print(f"compiled LOGRES      : {compiled_result.count('anc')}"
          " closure rows")

    # -- route 3: native engine ------------------------------------------
    native_result = Engine(schema, program).run(edb)
    print(f"native LOGRES engine : {native_result.count('anc')}"
          " closure rows")

    pairs = lambda fs: {  # noqa: E731
        (f.value["a"], f.value["d"]) for f in fs.facts_of("anc")
    }
    algebra_pairs = {(r["a"], r["d"]) for r in algebra_result}
    assert algebra_pairs == pairs(compiled_result) == pairs(native_result)
    print("\nall three routes agree ✔")

    # -- NF² restructuring: nest + aggregate over the closure -------------
    nested = evaluate(
        Nest(hand_written_plan(), ["d"], "reachable"), catalog
    )
    counted = evaluate(
        Aggregate(hand_written_plan(), ["a"], "count", None, "n"),
        catalog,
    )
    top = sorted(counted, key=lambda r: (-r["n"], r["a"]))[:3]
    print("\nmost connected nodes (algebra aggregate):")
    for row in top:
        members = next(
            r["reachable"] for r in nested if r["a"] == row["a"]
        )
        print(f"  {row['a']}: reaches {row['n']} nodes,"
              f" e.g. {sorted(members)[:4]}")


if __name__ == "__main__":
    main()
