"""Case study: a bill-of-materials (parts explosion) application.

Section 5 plans to "evaluate the expressiveness of LOGRES for building
applications, by performing some case studies".  This is one: the classic
deductive-database parts-explosion problem, exercising in one application

* classes with object sharing (one PART object used by many assemblies),
* a recursive data function (all transitive subparts, as a set),
* aggregates over function results (component counts),
* a passive constraint forbidding cyclic containment,
* engineering changes as update modules, with an inconsistent change
  correctly rejected.

Run:  python examples/case_study_parts.py
"""

from repro import Database, Mode, Module, Semantics
from repro.errors import ModuleApplicationError

BOM = """
domains
  pname = string.
classes
  part = (pname, unit_cost: integer).
associations
  uses = (asm: pname, comp: pname, qty: integer).
  contains = (asm: pname, comp: pname).
  breakdown = (asm: pname, parts: {pname}, n: integer).
functions
  subparts: pname -> {pname}.
  member(X, subparts(A)) <- uses(asm A, comp X).
  member(X, subparts(A)) <- uses(asm A, comp B), member(X, T),
                            T = subparts(B).
rules
  contains(asm A, comp C) <- uses(asm A, comp C).
  contains(asm A, comp C) <- uses(asm A, comp B),
                             contains(asm B, comp C).
  breakdown(asm A, parts P, n N) <- uses(asm A), P = subparts(A),
                                    count(P, N).
  % passive constraint: no part may (transitively) contain itself
  <- contains(asm A, comp A).
"""


def main():
    db = Database.from_source(BOM, semantics=Semantics.STRATIFIED)

    costs = {"bike": 0, "wheel": 0, "frame": 40,
             "spoke": 1, "rim": 8, "hub": 5}
    for pname, cost in costs.items():
        db.insert("part", pname=pname, unit_cost=cost)
    structure = [
        ("bike", "wheel", 2), ("bike", "frame", 1),
        ("wheel", "spoke", 32), ("wheel", "rim", 1), ("wheel", "hub", 1),
    ]
    for asm, comp, qty in structure:
        db.insert("uses", asm=asm, comp=comp, qty=qty)

    assert db.check() == []

    print("Parts explosion (recursive data function):")
    for row in sorted(db.tuples("breakdown"), key=lambda t: -t["n"]):
        print(f"  {row['asm']:6} -> {row['n']} distinct subparts:"
              f" {sorted(row['parts'])}")

    print("\nWhere is the hub used (object sharing upwards)?")
    for answer in db.query('?- contains(asm A, comp "hub").'):
        print(f"  inside {answer['A']}")

    # -- engineering change: the wheel gains a valve ---------------------
    change = Module.from_source("""
    rules
      part(pname "valve", unit_cost 2).
      uses(asm "wheel", comp "valve", qty 1).
    """, name="ECO-1: add valve")
    db.run_module(change, Mode.RIDV)
    bike = next(t for t in db.tuples("breakdown") if t["asm"] == "bike")
    print(f"\nAfter ECO-1 the bike explodes into {bike['n']} parts"
          f" (valve propagated transitively).")

    # -- an illegal change: making the frame contain the bike ------------
    bad = Module.from_source("""
    rules
      uses(asm "frame", comp "bike", qty 1).
    """, name="ECO-2: cyclic")
    try:
        db.run_module(bad, Mode.RIDV)
    except ModuleApplicationError as exc:
        print("\nCyclic engineering change rejected by the denial"
              " constraint:")
        print("  ", str(exc).splitlines()[0][:72])
    still = next(t for t in db.tuples("breakdown") if t["asm"] == "bike")
    print(f"  state intact: bike still has {still['n']} subparts.")


if __name__ == "__main__":
    main()
