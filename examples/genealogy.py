"""Genealogy: data functions, nesting, recursion (Examples 2.2 / 3.2).

Builds the parent/descendant domain with a recursive set-valued data
function DESC, materializes the nested ANCESTOR association (one tuple
per person, holding the *set* of their descendants), and contrasts the
three rule semantics on the same program.

Run:  python examples/genealogy.py
"""

from repro import Database, Semantics
from repro.workloads import genealogy_facts

GENEALOGY = """
domains
  name = string.
associations
  parent = (par: name, chil: name).
  ancestor = (anc: name, des: {name}).
  fertility = (who: name, n: integer).
functions
  desc: name -> {name}.
  member(X, desc(Y)) <- parent(par Y, chil X).
  member(X, desc(Y)) <- parent(par Y, chil Z), member(X, T),
                        T = desc(Z).
rules
  ancestor(anc X, des Y) <- parent(par X), Y = desc(X).
  fertility(who X, n N) <- parent(par X), S = desc(X), count(S, N).
"""


def main():
    db = Database.from_source(GENEALOGY, semantics=Semantics.STRATIFIED)

    # a small hand-made family on top of a generated forest
    for par, chil in [("eve", "abel"), ("eve", "seth"),
                      ("seth", "enos"), ("enos", "kenan")]:
        db.insert("parent", par=par, chil=chil)
    for fact in genealogy_facts(12, seed=42).facts_of("parent"):
        db.insert("parent", **fact.value.as_dict())

    print("Nested descendants (the data function builds sets):")
    rows = sorted(db.tuples("ancestor"), key=lambda t: t["anc"])
    for row in rows[:6]:
        names = ", ".join(sorted(row["des"]))
        print(f"  {row['anc']:6} -> {{{names}}}")

    print("\nMost prolific ancestors (count over the function's set):")
    fertile = sorted(db.tuples("fertility"),
                     key=lambda t: (-t["n"], t["who"]))
    for row in fertile[:3]:
        print(f"  {row['who']:6} has {row['n']} descendants")

    # --- the same program under inflationary semantics ----------------
    # Without stratification the nesting rule fires while desc is still
    # growing, so *partial* descendant sets survive alongside the final
    # ones — the anomaly Section 3.1 resolves with stratification.
    inflationary = db.instance(Semantics.INFLATIONARY)
    eve_sets = [
        f.value["des"] for f in inflationary.facts_of("ancestor")
        if f.value["anc"] == "eve"
    ]
    print("\nUnder INFLATIONARY semantics, 'eve' carries"
          f" {len(eve_sets)} descendant set(s) (partial snapshots"
          " survive);")
    stratified = db.instance(Semantics.STRATIFIED)
    eve_final = [
        f.value["des"] for f in stratified.facts_of("ancestor")
        if f.value["anc"] == "eve"
    ]
    print(f"under STRATIFIED semantics exactly {len(eve_final)}:"
          f" the perfect model.")


if __name__ == "__main__":
    main()
